/root/repo/target/debug/deps/figure4_object_anatomy-501729ece8b2ae17.d: tests/figure4_object_anatomy.rs

/root/repo/target/debug/deps/figure4_object_anatomy-501729ece8b2ae17: tests/figure4_object_anatomy.rs

tests/figure4_object_anatomy.rs:
