//! In-tree shim for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided, backed by `std::sync::mpsc`
//! (`sync_channel` for the bounded flavour). The receiver is wrapped in
//! a mutex so it is `Sync` like crossbeam's (endpoints share one
//! receiver across kernel threads via `&self`). A shared depth counter
//! backs crossbeam's `len`/`is_empty`, which `std::sync::mpsc` lacks.

#![forbid(unsafe_code)]

pub mod channel {
    use std::fmt;
    use std::sync::atomic::{AtomicIsize, Ordering};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait deadline elapsed with no message.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was ready.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`], carrying the rejected
    /// message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    ///
    /// The shared `depth` counter backs `len`/`is_empty`. It is signed:
    /// a receive's decrement can race ahead of the matching send's
    /// increment, and the transient negative must not saturate (which
    /// would drift the counter upward permanently); reads clamp to 0.
    pub struct Sender<T> {
        inner: Tx<T>,
        depth: Arc<AtomicIsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking on a full bounded channel;
        /// errors if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let sent = match &self.inner {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            };
            if sent.is_ok() {
                self.depth.fetch_add(1, Ordering::Relaxed);
            }
            sent
        }

        /// Non-blocking enqueue: a full bounded channel rejects the
        /// message instead of waiting for space.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let sent = match &self.inner {
                Tx::Unbounded(s) => s
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            };
            if sent.is_ok() {
                self.depth.fetch_add(1, Ordering::Relaxed);
            }
            sent
        }

        /// Messages currently queued (approximate under concurrency).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed).max(0) as usize
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
        depth: Arc<AtomicIsize>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let got = self.lock().recv().map_err(|_| RecvError);
            self.note_taken(got.is_ok());
            got
        }

        /// Blocks with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let got = self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            });
            self.note_taken(got.is_ok());
            got
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let got = self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            });
            self.note_taken(got.is_ok());
            got
        }

        /// Messages currently queued (approximate under concurrency).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed).max(0) as usize
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        fn note_taken(&self, took: bool) {
            if took {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    fn wrap<T>(tx: Tx<T>, rx: mpsc::Receiver<T>) -> (Sender<T>, Receiver<T>) {
        let depth = Arc::new(AtomicIsize::new(0));
        (
            Sender {
                inner: tx,
                depth: Arc::clone(&depth),
            },
            Receiver {
                inner: Mutex::new(rx),
                depth,
            },
        )
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        wrap(Tx::Unbounded(tx), rx)
    }

    /// Creates a bounded FIFO channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        wrap(Tx::Bounded(tx), rx)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_sheds_when_full() {
            let (tx, rx) = bounded(2);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Ok(()));
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.len(), 1);
            assert!(!rx.is_empty());
            assert_eq!(tx.try_send(4), Ok(()));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(4));
            assert!(rx.is_empty());
            drop(rx);
            assert_eq!(tx.try_send(5), Err(TrySendError::Disconnected(5)));
        }
    }
}
