/root/repo/target/debug/deps/vprocs-87b6a1351a1418c5.d: crates/bench/benches/vprocs.rs

/root/repo/target/debug/deps/vprocs-87b6a1351a1418c5: crates/bench/benches/vprocs.rs

crates/bench/benches/vprocs.rs:
