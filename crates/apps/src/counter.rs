//! The quickstart type: a checkpointing counter.

use eden_capability::Rights;
use eden_kernel::{OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// A counter with serialized writes and concurrent reads.
///
/// Operations:
///
/// | op | class | rights | effect |
/// |---|---|---|---|
/// | `add [i64]` | writes (1) | WRITE | add and return the new value |
/// | `get` | reads (4) | READ | current value |
/// | `reset` | writes | OWNER | back to the initial value |
/// | `checkpoint` | writes | CHECKPOINT | persist the current value |
///
/// # Examples
///
/// ```
/// use eden_kernel::Cluster;
/// use eden_apps::counter::CounterType;
/// use eden_wire::Value;
///
/// let cluster = Cluster::builder()
///     .nodes(1)
///     .register(|| Box::new(CounterType))
///     .build();
/// let cap = cluster.node(0).create_object("counter", &[]).unwrap();
/// let out = cluster.node(0).invoke(cap, "add", &[Value::I64(2)]).unwrap();
/// assert_eq!(out, vec![Value::I64(2)]);
/// cluster.shutdown();
/// ```
pub struct CounterType;

impl CounterType {
    /// The registered type name.
    pub const NAME: &'static str = "counter";

    /// The registered type name (method form for builder call sites).
    pub fn spec_name() -> &'static str {
        Self::NAME
    }
}

impl TypeManager for CounterType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(CounterType::NAME)
            .class("writes", 1)
            .class("reads", 4)
            .op("add", "writes", Rights::WRITE)
            .op("get", "reads", Rights::READ)
            .op("reset", "writes", Rights::OWNER)
            .op("checkpoint", "writes", Rights::CHECKPOINT)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        let start = args.first().and_then(Value::as_i64).unwrap_or(0);
        ctx.mutate_repr(|r| {
            r.put_i64("count", start);
            r.put_i64("initial", start);
        })?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "add" => {
                let delta = OpCtx::i64_arg(args, 0)?;
                let new = ctx.mutate_repr(|r| {
                    let v = r.get_i64("count").unwrap_or(0) + delta;
                    r.put_i64("count", v);
                    v
                })?;
                Ok(vec![Value::I64(new)])
            }
            "get" => Ok(vec![Value::I64(
                ctx.read_repr(|r| r.get_i64("count").unwrap_or(0)),
            )]),
            "reset" => {
                let initial = ctx.read_repr(|r| r.get_i64("initial").unwrap_or(0));
                ctx.mutate_repr(|r| r.put_i64("count", initial))?;
                Ok(vec![])
            }
            "checkpoint" => {
                let version = ctx.checkpoint()?;
                Ok(vec![Value::U64(version)])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}
