/root/repo/target/debug/deps/eden-e680dcff79646e49.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libeden-e680dcff79646e49.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
