/root/repo/target/debug/deps/failover-9cc29bf3b6c0b577.d: tests/failover.rs Cargo.toml

/root/repo/target/debug/deps/libfailover-9cc29bf3b6c0b577.rmeta: tests/failover.rs Cargo.toml

tests/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
