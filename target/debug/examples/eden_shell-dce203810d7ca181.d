/root/repo/target/debug/examples/eden_shell-dce203810d7ca181.d: examples/eden_shell.rs

/root/repo/target/debug/examples/eden_shell-dce203810d7ca181: examples/eden_shell.rs

examples/eden_shell.rs:
