//! Object representations: the long-term state.
//!
//! §4.1: "The representation consists of the data and capability segments
//! that form the object's long-term state; these segments contain the
//! data structures that implement any data abstraction."
//!
//! A [`Representation`] is a set of named data segments (uninterpreted
//! bytes, with typed [`Value`] convenience accessors) plus a capability
//! segment ([`CList`]). It converts losslessly to and from the portable
//! [`ObjectImage`] used by checkpointing, mobility and replication.

use std::collections::BTreeMap;

use bytes::Bytes;
use eden_capability::{CList, Capability};
use eden_wire::{ObjectImage, Value, WireDecode, WireEncode};

/// The long-term state of one object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Representation {
    data: BTreeMap<String, Bytes>,
    caps: CList,
}

impl Representation {
    /// An empty representation.
    pub fn new() -> Self {
        Representation::default()
    }

    /// Stores raw bytes under `segment`.
    pub fn put(&mut self, segment: impl Into<String>, bytes: impl Into<Bytes>) {
        self.data.insert(segment.into(), bytes.into());
    }

    /// Reads the raw bytes of `segment`.
    pub fn get(&self, segment: &str) -> Option<&Bytes> {
        self.data.get(segment)
    }

    /// Removes `segment`, returning its bytes.
    pub fn remove(&mut self, segment: &str) -> Option<Bytes> {
        self.data.remove(segment)
    }

    /// Tests whether `segment` exists.
    pub fn contains(&self, segment: &str) -> bool {
        self.data.contains_key(segment)
    }

    /// Stores a [`Value`] under `segment` (wire-encoded).
    pub fn put_value(&mut self, segment: impl Into<String>, value: &Value) {
        self.data.insert(segment.into(), value.encode_to_bytes());
    }

    /// Reads a [`Value`] from `segment`; `None` if absent or undecodable.
    pub fn get_value(&self, segment: &str) -> Option<Value> {
        self.data
            .get(segment)
            .and_then(|b| Value::decode_from_bytes(b).ok())
    }

    /// Stores a string under `segment`.
    pub fn put_str(&mut self, segment: impl Into<String>, s: &str) {
        self.put_value(segment, &Value::Str(s.to_string()));
    }

    /// Reads a string from `segment`.
    pub fn get_str(&self, segment: &str) -> Option<String> {
        match self.get_value(segment)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Stores an unsigned counter under `segment`.
    pub fn put_u64(&mut self, segment: impl Into<String>, v: u64) {
        self.put_value(segment, &Value::U64(v));
    }

    /// Reads an unsigned counter from `segment`.
    pub fn get_u64(&self, segment: &str) -> Option<u64> {
        self.get_value(segment)?.as_u64()
    }

    /// Stores a signed integer under `segment`.
    pub fn put_i64(&mut self, segment: impl Into<String>, v: i64) {
        self.put_value(segment, &Value::I64(v));
    }

    /// Reads a signed integer from `segment`.
    pub fn get_i64(&self, segment: &str) -> Option<i64> {
        self.get_value(segment)?.as_i64()
    }

    /// Iterates data segment names in order.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.data.keys().map(String::as_str)
    }

    /// Segment names starting with `prefix`, in order — the idiom types
    /// use for dynamic collections (`"msg:0001"`, `"msg:0002"`, …).
    pub fn segments_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.data
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
    }

    /// The capability segment.
    pub fn caps(&self) -> &CList {
        &self.caps
    }

    /// The capability segment, mutable.
    pub fn caps_mut(&mut self) -> &mut CList {
        &mut self.caps
    }

    /// Total payload bytes across data segments.
    pub fn data_size(&self) -> usize {
        self.data.iter().map(|(k, v)| k.len() + v.len()).sum()
    }

    /// Serializes into a portable image.
    pub fn to_image(&self, type_name: &str, frozen: bool, version: u64) -> ObjectImage {
        ObjectImage {
            type_name: type_name.to_string(),
            data: self
                .data
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            caps: self
                .caps
                .iter()
                .map(|(slot, cap)| (slot.to_string(), cap))
                .collect(),
            frozen,
            version,
        }
    }

    /// Rebuilds a representation from an image.
    pub fn from_image(image: &ObjectImage) -> Self {
        Representation {
            data: image
                .data
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            caps: image
                .caps
                .iter()
                .map(|(slot, cap): &(String, Capability)| (slot.clone(), *cap))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, NodeId, Rights};
    use proptest::prelude::*;

    #[test]
    fn typed_accessors_round_trip() {
        let mut r = Representation::new();
        r.put_str("title", "eden");
        r.put_u64("count", 42);
        r.put_i64("delta", -7);
        assert_eq!(r.get_str("title").as_deref(), Some("eden"));
        assert_eq!(r.get_u64("count"), Some(42));
        assert_eq!(r.get_i64("delta"), Some(-7));
        assert_eq!(r.get_str("count"), None, "type confusion must miss");
        assert_eq!(r.get_u64("missing"), None);
    }

    #[test]
    fn raw_and_value_segments_coexist() {
        let mut r = Representation::new();
        r.put("blob", Bytes::from_static(b"\xff\xfe\xfd"));
        r.put_value("v", &Value::Bool(true));
        assert_eq!(&r.get("blob").unwrap()[..], b"\xff\xfe\xfd");
        assert_eq!(r.get_value("v"), Some(Value::Bool(true)));
        assert_eq!(r.get_value("blob"), None, "undecodable raw bytes miss");
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut r = Representation::new();
        for k in ["msg:0002", "msg:0001", "msgx", "other"] {
            r.put_u64(k, 1);
        }
        let got: Vec<&str> = r.segments_with_prefix("msg:").collect();
        assert_eq!(got, vec!["msg:0001", "msg:0002"]);
    }

    #[test]
    fn image_round_trip_preserves_everything() {
        let g = NameGenerator::with_epoch(NodeId(1), 9);
        let mut r = Representation::new();
        r.put_str("s", "text");
        r.put("raw", Bytes::from_static(&[9, 9]));
        r.caps_mut().put(
            "peer",
            eden_capability::Capability::mint(g.next_name()).restrict(Rights::READ),
        );
        let img = r.to_image("mailbox", true, 7);
        assert_eq!(img.type_name, "mailbox");
        assert!(img.frozen);
        assert_eq!(img.version, 7);
        let back = Representation::from_image(&img);
        assert_eq!(back, r);
    }

    #[test]
    fn data_size_counts_keys_and_payload() {
        let mut r = Representation::new();
        r.put("ab", Bytes::from_static(&[0; 10]));
        assert_eq!(r.data_size(), 12);
    }

    proptest! {
        #[test]
        fn arbitrary_segments_survive_image_round_trip(
            segs in proptest::collection::btree_map("[a-z]{1,8}", proptest::collection::vec(0u8.., 0..64), 0..16)
        ) {
            let mut r = Representation::new();
            for (k, v) in &segs {
                r.put(k.clone(), Bytes::from(v.clone()));
            }
            let back = Representation::from_image(&r.to_image("t", false, 0));
            prop_assert_eq!(back, r);
        }
    }
}
