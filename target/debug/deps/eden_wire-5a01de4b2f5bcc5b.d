/root/repo/target/debug/deps/eden_wire-5a01de4b2f5bcc5b.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/obs_codec.rs crates/wire/src/status.rs crates/wire/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libeden_wire-5a01de4b2f5bcc5b.rmeta: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/obs_codec.rs crates/wire/src/status.rs crates/wire/src/value.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/image.rs:
crates/wire/src/message.rs:
crates/wire/src/obs_codec.rs:
crates/wire/src/status.rs:
crates/wire/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
