//! The Eden kernel: location-independent object support.
//!
//! "The Eden kernel simply provides the set of primitives needed to
//! support the object programming base of the system; for example, object
//! and type manager creation and object addressing and invocation" (§4).
//! Its synopsis (§4.5) lists exactly four primitive groups, and this crate
//! implements all of them:
//!
//! * **creation of new types and objects** — [`TypeManager`],
//!   [`TypeRegistry`], [`Node::create_object`];
//! * **location-independent object invocation** — [`Node::invoke`] and
//!   friends, backed by the location service (hint cache, birth-node hint,
//!   broadcast search, forwarding after moves);
//! * **preservation of object long-term state over failures** — the
//!   checkpoint / checksite / crash primitives on [`OpCtx`], with
//!   reincarnation on the next invocation;
//! * **intra-object communication and synchronization** — invocation
//!   classes with per-class concurrency limits, [`EdenSemaphore`],
//!   [`MessagePort`], and detached [`behavior`](OpCtx::spawn_behavior)
//!   processes.
//!
//! A [`Node`] is the abstraction of §4.3: "an object that supplies virtual
//! memory to store the segments of active objects and virtual processors
//! to execute invocations". One process can host many nodes (the
//! [`Cluster`] harness runs a whole Figure-1 system in-process over a
//! [`LoopbackMesh`](eden_transport::LoopbackMesh)), or one node per
//! process over TCP.
//!
//! ## A minimal type manager
//!
//! ```
//! use eden_kernel::{Cluster, OpCtx, OpError, OpResult, TypeManager, TypeSpec};
//! use eden_capability::Rights;
//! use eden_wire::Value;
//!
//! struct Greeter;
//!
//! impl TypeManager for Greeter {
//!     fn spec(&self) -> TypeSpec {
//!         TypeSpec::new("greeter")
//!             .class("reads", 4)
//!             .op("greet", "reads", Rights::READ)
//!     }
//!
//!     fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
//!         match op {
//!             "greet" => {
//!                 let who = args
//!                     .first()
//!                     .and_then(Value::as_str)
//!                     .ok_or_else(|| OpError::type_error("greet(name: str)"))?;
//!                 Ok(vec![Value::Str(format!("hello, {who}"))])
//!             }
//!             _ => Err(OpError::no_such_op(op)),
//!         }
//!     }
//! }
//!
//! let cluster = Cluster::builder()
//!     .nodes(2)
//!     .register(|| Box::new(Greeter))
//!     .build();
//! let cap = cluster.node(0).create_object("greeter", &[]).unwrap();
//! // Location-independent: invoked from node 1, executed on node 0.
//! let out = cluster.node(1).invoke(cap, "greet", &[Value::from("eden")]).unwrap();
//! assert_eq!(out[0].as_str(), Some("hello, eden"));
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]

pub mod behavior;
pub mod cluster;
pub mod ctx;
pub mod error;
pub mod lru;
pub mod metrics;
pub mod node;
pub mod object;
pub mod pipeline;
pub mod policy;
pub mod repr;
pub mod sync;
pub mod types;
pub mod vproc;
pub mod waiter;

pub use cluster::{Cluster, ClusterBuilder, ClusterConfig};
pub use ctx::OpCtx;
pub use error::{EdenError, Result};
pub use lru::LruMap;
pub use metrics::KernelMetrics;
pub use node::{
    node_object_cap, node_object_name, InvocationHandle, Node, NodeConfig, ObjectInfo,
    ReliabilityLevel,
};
pub use object::ObjStatus;
pub use pipeline::{PendingCall, PipelinedClient};
pub use repr::Representation;
pub use sync::{EdenSemaphore, MessagePort};
pub use types::{ClassSpec, OpError, OpResult, OpSpec, TypeManager, TypeRegistry, TypeSpec};
pub use vproc::VprocStats;
