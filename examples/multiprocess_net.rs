//! A multi-process Eden cluster over TCP on one machine.
//!
//! The reproduction's "network of node machines": each OS process hosts
//! one kernel on a `TcpMesh` endpoint, and invocations flow between
//! processes exactly as they do in-process. The parent process is node 0
//! and spawns two children (nodes 1 and 2); node 1 creates a counter
//! object, and both node 0 and node 2 invoke it across process
//! boundaries.
//!
//! ```sh
//! cargo run --example multiprocess_net
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use eden::apps::counter::CounterType;
use eden::capability::{Capability, NodeId, ObjName, Rights};
use eden::kernel::{Node, NodeConfig, TypeRegistry};
use eden::store::MemStore;
use eden::transport::{TcpMesh, TcpMeshConfig};
use eden::wire::Value;

fn pick_ports(n: usize) -> Vec<SocketAddr> {
    // Bind ephemeral listeners to reserve distinct ports, then release
    // them for the child processes to rebind. Fine for an example.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

fn boot_node(id: u16, addrs: &[SocketAddr]) -> Node {
    let peers: HashMap<NodeId, SocketAddr> = addrs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != id as usize)
        .map(|(i, a)| (NodeId(i as u16), *a))
        .collect();
    let mut config = TcpMeshConfig::new(NodeId(id), addrs[id as usize]);
    config.peers = peers;
    let mesh = TcpMesh::bind(config).expect("bind tcp mesh");
    let registry = Arc::new(TypeRegistry::new());
    registry.register(Arc::new(CounterType)).expect("register");
    Node::new(
        NodeConfig::default(),
        Arc::new(mesh),
        Arc::new(MemStore::new()),
        registry,
    )
}

fn encode_cap(cap: Capability) -> String {
    format!("{:032x}:{:08x}", cap.name().to_u128(), cap.rights().bits())
}

fn decode_cap(s: &str) -> Capability {
    let (name_hex, rights_hex) = s.split_once(':').expect("cap format");
    Capability::with_rights(
        ObjName::from_u128(u128::from_str_radix(name_hex, 16).expect("name hex")),
        Rights::from_bits(u32::from_str_radix(rights_hex, 16).expect("rights hex")),
    )
}

/// Child process: host one kernel, obey simple stdin commands.
fn run_child(id: u16, addrs: Vec<SocketAddr>) {
    let node = boot_node(id, &addrs);
    if id == 1 {
        // Node 1 is the server: create the counter and announce it.
        let cap = node
            .create_object("counter", &[Value::I64(0)])
            .expect("create counter");
        println!("CAP {}", encode_cap(cap));
    } else {
        println!("READY");
    }
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_default();
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("INVOKE") => {
                let cap = decode_cap(parts.next().expect("cap"));
                let delta: i64 = parts.next().expect("delta").parse().expect("i64");
                match node.invoke(cap, "add", &[Value::I64(delta)]) {
                    Ok(out) => println!("RESULT {:?}", out[0].as_i64().unwrap_or(0)),
                    Err(e) => println!("ERROR {e}"),
                }
            }
            Some("EXIT") | None => break,
            _ => println!("ERROR unknown command"),
        }
    }
    node.shutdown();
}

fn spawn_child(id: u16, addrs: &[SocketAddr]) -> Child {
    let exe = std::env::current_exe().expect("current exe");
    let addr_list = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    Command::new(exe)
        .args(["--child", &id.to_string(), &addr_list])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn child")
}

fn read_line(child: &mut Child) -> String {
    let stdout = child.stdout.as_mut().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read child line");
    line.trim().to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--child" {
        let id: u16 = args[2].parse().expect("child id");
        let addrs: Vec<SocketAddr> = args[3]
            .split(',')
            .map(|s| s.parse().expect("addr"))
            .collect();
        run_child(id, addrs);
        return;
    }

    // Parent: reserve ports, spawn the children, boot node 0.
    let addrs = pick_ports(3);
    println!("cluster addresses: {addrs:?}");
    let mut server = spawn_child(1, &addrs);
    let mut worker = spawn_child(2, &addrs);

    let cap_line = read_line(&mut server);
    let cap = decode_cap(cap_line.strip_prefix("CAP ").expect("CAP line"));
    println!(
        "node 1 (pid {}) created counter {}",
        server.id(),
        cap.name()
    );
    let ready = read_line(&mut worker);
    assert_eq!(ready, "READY");
    println!("node 2 (pid {}) is up", worker.id());

    let node0 = boot_node(0, &addrs);
    std::thread::sleep(Duration::from_millis(100));

    // Parent invokes across processes.
    let out = node0
        .invoke_with_timeout(cap, "add", &[Value::I64(5)], Duration::from_secs(5))
        .expect("cross-process invoke");
    println!(
        "node 0 (pid {}) add(5)  -> {:?}",
        std::process::id(),
        out[0]
    );

    // Node 2 invokes too, driven over its stdin.
    worker
        .stdin
        .as_mut()
        .unwrap()
        .write_all(format!("INVOKE {} 10\n", encode_cap(cap)).as_bytes())
        .expect("drive worker");
    let result = read_line(&mut worker);
    println!("node 2 add(10) -> {result}");

    let out = node0
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(5))
        .expect("final get");
    println!(
        "node 0 get()   -> {:?} (three processes, one object space)",
        out[0]
    );
    assert_eq!(out[0].as_i64(), Some(15));

    for child in [&mut server, &mut worker] {
        let _ = child.stdin.as_mut().unwrap().write_all(b"EXIT\n");
    }
    let _ = server.wait();
    let _ = worker.wait();
    node0.shutdown();
    println!("done");
}
