//! K-way replicated checkpoint storage.
//!
//! §4.4: "an object may specify, through the checksite primitive, which
//! node is responsible for maintaining its long-term storage, and what
//! level of reliability is required. Different reliability levels may
//! cause different actions when a checkpoint is issued."
//!
//! [`ReplicatedStore`] composes several [`CheckpointStore`]s (typically the
//! checksite's disk plus backups on other nodes) and implements the
//! higher reliability levels: a `put` succeeds only when a write quorum
//! acknowledges, and reads fall back across replicas, repairing any
//! replica that missed the write.

use std::sync::Arc;

use bytes::Bytes;
use eden_capability::ObjName;

use crate::{CheckpointStore, StoreError};

/// A quorum-writing, fallback-reading composite store.
pub struct ReplicatedStore {
    replicas: Vec<Arc<dyn CheckpointStore>>,
    write_quorum: usize,
}

impl ReplicatedStore {
    /// Composes `replicas` with a required write quorum.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty or `write_quorum` is zero or exceeds
    /// the replica count — all configuration errors.
    pub fn new(replicas: Vec<Arc<dyn CheckpointStore>>, write_quorum: usize) -> Self {
        assert!(!replicas.is_empty(), "at least one replica required");
        assert!(
            (1..=replicas.len()).contains(&write_quorum),
            "write quorum must be within 1..=replica count"
        );
        ReplicatedStore {
            replicas,
            write_quorum,
        }
    }

    /// Full replication: every replica must acknowledge each checkpoint.
    pub fn fully_synchronous(replicas: Vec<Arc<dyn CheckpointStore>>) -> Self {
        let q = replicas.len();
        ReplicatedStore::new(replicas, q)
    }

    /// Number of composed replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Direct access to one replica (failure-injection tests).
    pub fn replica(&self, i: usize) -> &Arc<dyn CheckpointStore> {
        &self.replicas[i]
    }

    /// Copies the latest version of `name` from the first replica that has
    /// it onto every replica that does not (read repair / anti-entropy).
    pub fn repair(&self, name: ObjName) -> Result<usize, StoreError> {
        let Some((version, data)) = self.latest(name)? else {
            return Ok(0);
        };
        let mut repaired = 0;
        for rep in &self.replicas {
            let has = rep
                .latest(name)?
                .map(|(v, _)| v >= version)
                .unwrap_or(false);
            if !has {
                rep.put(name, &data)?;
                repaired += 1;
            }
        }
        Ok(repaired)
    }
}

impl CheckpointStore for ReplicatedStore {
    fn put(&self, name: ObjName, image: &[u8]) -> Result<u64, StoreError> {
        let mut acked = 0usize;
        let mut version = 0u64;
        for rep in &self.replicas {
            match rep.put(name, image) {
                Ok(v) => {
                    acked += 1;
                    version = version.max(v);
                }
                Err(_) => continue,
            }
        }
        if acked >= self.write_quorum {
            Ok(version)
        } else {
            Err(StoreError::QuorumFailed {
                acked,
                needed: self.write_quorum,
            })
        }
    }

    fn latest(&self, name: ObjName) -> Result<Option<(u64, Bytes)>, StoreError> {
        let mut best: Option<(u64, Bytes)> = None;
        let mut last_err = None;
        for rep in &self.replicas {
            match rep.latest(name) {
                Ok(Some((v, b))) => {
                    if best.as_ref().map(|(bv, _)| v > *bv).unwrap_or(true) {
                        best = Some((v, b));
                    }
                }
                Ok(None) => {}
                Err(e) => last_err = Some(e),
            }
        }
        match (best, last_err) {
            (Some(found), _) => Ok(Some(found)),
            (None, Some(e)) => Err(e),
            (None, None) => Ok(None),
        }
    }

    fn get(&self, name: ObjName, version: u64) -> Result<Option<Bytes>, StoreError> {
        let mut last_err = None;
        for rep in &self.replicas {
            match rep.get(name, version) {
                Ok(Some(b)) => return Ok(Some(b)),
                Ok(None) => {}
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    fn versions(&self, name: ObjName) -> Result<Vec<u64>, StoreError> {
        let mut all: Vec<u64> = Vec::new();
        for rep in &self.replicas {
            if let Ok(vs) = rep.versions(name) {
                all.extend(vs);
            }
        }
        all.sort_unstable();
        all.dedup();
        Ok(all)
    }

    fn delete(&self, name: ObjName) -> Result<(), StoreError> {
        let mut ok = 0usize;
        for rep in &self.replicas {
            if rep.delete(name).is_ok() {
                ok += 1;
            }
        }
        if ok >= self.write_quorum {
            Ok(())
        } else {
            Err(StoreError::QuorumFailed {
                acked: ok,
                needed: self.write_quorum,
            })
        }
    }

    fn names(&self) -> Result<Vec<ObjName>, StoreError> {
        let mut all: Vec<ObjName> = Vec::new();
        for rep in &self.replicas {
            if let Ok(ns) = rep.names() {
                all.extend(ns);
            }
        }
        all.sort();
        all.dedup();
        Ok(all)
    }

    fn flush(&self) -> Result<(), StoreError> {
        for rep in &self.replicas {
            rep.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::{FaultPlan, FaultyStore};
    use crate::mem::MemStore;
    use eden_capability::{NameGenerator, NodeId};

    fn gen() -> NameGenerator {
        NameGenerator::with_epoch(NodeId(3), 0xcafe)
    }

    fn three_mem() -> Vec<Arc<dyn CheckpointStore>> {
        (0..3)
            .map(|_| Arc::new(MemStore::new()) as Arc<dyn CheckpointStore>)
            .collect()
    }

    #[test]
    fn replicated_store_satisfies_contract() {
        let store = ReplicatedStore::fully_synchronous(three_mem());
        crate::contract::exercise_store_contract(&store);
    }

    #[test]
    fn write_lands_on_every_replica() {
        let store = ReplicatedStore::fully_synchronous(three_mem());
        let n = gen().next_name();
        store.put(n, b"replicated").unwrap();
        for i in 0..3 {
            assert_eq!(
                &store.replica(i).latest(n).unwrap().unwrap().1[..],
                b"replicated"
            );
        }
    }

    #[test]
    fn quorum_write_tolerates_minority_failure() {
        let dead = Arc::new(FaultyStore::new(
            MemStore::new(),
            FaultPlan::fail_all_writes(),
        ));
        let replicas: Vec<Arc<dyn CheckpointStore>> =
            vec![Arc::new(MemStore::new()), Arc::new(MemStore::new()), dead];
        let store = ReplicatedStore::new(replicas, 2);
        let n = gen().next_name();
        store.put(n, b"still durable").unwrap();
        assert_eq!(&store.latest(n).unwrap().unwrap().1[..], b"still durable");
    }

    #[test]
    fn quorum_write_fails_when_majority_fails() {
        let replicas: Vec<Arc<dyn CheckpointStore>> = vec![
            Arc::new(FaultyStore::new(
                MemStore::new(),
                FaultPlan::fail_all_writes(),
            )),
            Arc::new(FaultyStore::new(
                MemStore::new(),
                FaultPlan::fail_all_writes(),
            )),
            Arc::new(MemStore::new()),
        ];
        let store = ReplicatedStore::new(replicas, 2);
        let n = gen().next_name();
        assert!(matches!(
            store.put(n, b"won't make it"),
            Err(StoreError::QuorumFailed {
                acked: 1,
                needed: 2
            })
        ));
    }

    #[test]
    fn read_falls_back_past_failed_replica() {
        let good = Arc::new(MemStore::new());
        let n = gen().next_name();
        good.put(n, b"survivor").unwrap();
        let replicas: Vec<Arc<dyn CheckpointStore>> = vec![
            Arc::new(FaultyStore::new(
                MemStore::new(),
                FaultPlan::fail_all_reads(),
            )),
            good,
        ];
        let store = ReplicatedStore::new(replicas, 1);
        assert_eq!(&store.latest(n).unwrap().unwrap().1[..], b"survivor");
    }

    #[test]
    fn repair_heals_a_lagging_replica() {
        let a = Arc::new(MemStore::new());
        let b = Arc::new(MemStore::new());
        let n = gen().next_name();
        a.put(n, b"v1").unwrap();
        let store = ReplicatedStore::new(
            vec![
                a as Arc<dyn CheckpointStore>,
                b.clone() as Arc<dyn CheckpointStore>,
            ],
            1,
        );
        assert_eq!(b.latest(n).unwrap(), None);
        let repaired = store.repair(n).unwrap();
        assert_eq!(repaired, 1);
        assert_eq!(&b.latest(n).unwrap().unwrap().1[..], b"v1");
    }

    #[test]
    #[should_panic(expected = "write quorum")]
    fn zero_quorum_is_rejected() {
        let _ = ReplicatedStore::new(three_mem(), 0);
    }
}
