/root/repo/target/release/deps/eden_apps-42a9ff1dcf116a54.d: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

/root/repo/target/release/deps/libeden_apps-42a9ff1dcf116a54.rlib: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

/root/repo/target/release/deps/libeden_apps-42a9ff1dcf116a54.rmeta: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

crates/apps/src/lib.rs:
crates/apps/src/calendar.rs:
crates/apps/src/counter.rs:
crates/apps/src/hierarchy.rs:
crates/apps/src/mail.rs:
crates/apps/src/policy.rs:
crates/apps/src/queue.rs:
