//! One module per rule. Rules 1–5 are per-file token rules; rules 6–8
//! are workspace graph rules built on the [`model`](crate::model).

pub(crate) mod blocking;
pub(crate) mod capability;
pub(crate) mod lock_order;
pub(crate) mod metric;
pub(crate) mod panic;
pub(crate) mod pool;
pub(crate) mod wire_drift;
pub(crate) mod wire_exhaustive;
