//! The per-node observability registry: named metrics, the flight
//! recorder, the trace collector, and span/trace id allocation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::now_ns;
use crate::hist::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};
use crate::recorder::FlightRecorder;
use crate::trace::{stage, SpanRecord, TraceCollector, TraceCtx};

/// Default flight-recorder capacity (events per node).
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;
/// Default trace-collector capacity (spans per node).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// How root spans are sampled when a trace would start.
///
/// Sampling is decided once, at the root: a sampled-out invocation
/// carries no [`TraceCtx`] at all, so every downstream layer (client
/// send, transport, dispatch, execute, reply) skips span recording for
/// free — the cost of a sampled-out trace is one policy check.
///
/// Ratio sampling is deterministic (a shared counter, not a random
/// draw): exactly one in `n` roots is sampled, which keeps experiment
/// runs reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TraceSampling {
    /// Every invocation is traced (the default; matches the pre-sampling
    /// behavior).
    #[default]
    Always,
    /// One in `n` root spans is traced. `Ratio(0)` disables tracing
    /// entirely; `Ratio(1)` is equivalent to [`Always`](Self::Always).
    Ratio(u64),
    /// Per-operation ratios, with `default` applied to operations not
    /// listed. Each entry has [`Ratio`](Self::Ratio) semantics.
    PerOperation {
        /// Operation name → sampling ratio.
        ops: BTreeMap<String, u64>,
        /// Ratio for operations absent from `ops`.
        default: u64,
    },
}

/// One node's observability state. Cheap handles ([`Arc<Counter>`],
/// [`Arc<Histogram>`]…) are handed out once and bumped lock-free on hot
/// paths; the registry lock is only taken on first lookup of a name.
pub struct ObsRegistry {
    node: u16,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    recorder: FlightRecorder,
    traces: TraceCollector,
    span_seq: AtomicU64,
    trace_seq: AtomicU64,
    sampling: Mutex<TraceSampling>,
    sample_seq: AtomicU64,
}

impl ObsRegistry {
    /// Creates a registry for `node` with default capacities.
    pub fn new(node: u16) -> Self {
        ObsRegistry {
            node,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            recorder: FlightRecorder::new(DEFAULT_RECORDER_CAPACITY),
            traces: TraceCollector::new(DEFAULT_TRACE_CAPACITY),
            span_seq: AtomicU64::new(1),
            trace_seq: AtomicU64::new(1),
            sampling: Mutex::new(TraceSampling::Always),
            sample_seq: AtomicU64::new(0),
        }
    }

    /// The node this registry belongs to.
    pub fn node(&self) -> u16 {
        self.node
    }

    /// Named monotone counter (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Named gauge (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::new());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Named latency histogram (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Current value of every counter.
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Current level of every gauge.
    pub fn gauges_snapshot(&self) -> BTreeMap<String, i64> {
        self.gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every histogram.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// This node's flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// This node's span collector.
    pub fn traces(&self) -> &TraceCollector {
        &self.traces
    }

    fn next_span_id(&self) -> u64 {
        // Node id in the high bits keeps ids unique across in-process
        // nodes without coordination.
        ((self.node as u64) << 48) | self.span_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn next_trace_id(&self) -> u64 {
        ((self.node as u64) << 48) | self.trace_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Replaces the trace-sampling policy (effective for subsequent
    /// root spans; in-flight traces finish under the old policy).
    pub fn set_sampling(&self, policy: TraceSampling) {
        *self.sampling.lock().unwrap_or_else(|e| e.into_inner()) = policy;
    }

    /// The current trace-sampling policy.
    pub fn sampling(&self) -> TraceSampling {
        self.sampling
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Decides whether a root span for `op` should be traced under the
    /// current policy. Deterministic: ratio decisions consume a shared
    /// counter, so exactly one in `n` eligible roots samples.
    pub fn should_sample(&self, op: &str) -> bool {
        let ratio = match &*self.sampling.lock().unwrap_or_else(|e| e.into_inner()) {
            TraceSampling::Always => return true,
            TraceSampling::Ratio(n) => *n,
            TraceSampling::PerOperation { ops, default } => {
                ops.get(op).copied().unwrap_or(*default)
            }
        };
        match ratio {
            0 => false,
            1 => true,
            n => self
                .sample_seq
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n),
        }
    }

    /// Opens a root span for operation `op` if the sampling policy
    /// elects it; `None` means the invocation runs untraced (and every
    /// downstream layer skips span work because no [`TraceCtx`] exists).
    pub fn sampled_root_span(&self, name: &'static str, op: &str) -> Option<SpanGuard<'_>> {
        if self.should_sample(op) {
            Some(self.root_span(name))
        } else {
            None
        }
    }

    /// Opens a root span, starting a new trace.
    pub fn root_span(&self, name: &'static str) -> SpanGuard<'_> {
        let ctx = TraceCtx {
            trace_id: self.next_trace_id(),
            parent_span: 0,
            span_id: self.next_span_id(),
        };
        SpanGuard {
            registry: self,
            name,
            stage: stage::NONE,
            ctx,
            start_ns: now_ns(),
            finished: false,
        }
    }

    /// Opens a span as a child of `parent` (possibly from another node).
    pub fn child_span(&self, name: &'static str, parent: TraceCtx) -> SpanGuard<'_> {
        let ctx = TraceCtx {
            trace_id: parent.trace_id,
            parent_span: parent.span_id,
            span_id: self.next_span_id(),
        };
        SpanGuard {
            registry: self,
            name,
            stage: stage::NONE,
            ctx,
            start_ns: now_ns(),
            finished: false,
        }
    }

    /// [`child_span`](Self::child_span) with a critical-path stage tag.
    pub fn child_span_staged(
        &self,
        name: &'static str,
        stage: &'static str,
        parent: TraceCtx,
    ) -> SpanGuard<'_> {
        let mut guard = self.child_span(name, parent);
        guard.stage = stage;
        guard
    }

    /// Records a span retroactively from explicit timestamps (used for
    /// queue-wait spans whose start predates the recording site).
    pub fn record_span(
        &self,
        name: &'static str,
        parent: TraceCtx,
        start_ns: u64,
        end_ns: u64,
    ) -> TraceCtx {
        self.record_span_staged(name, stage::NONE, parent, start_ns, end_ns)
    }

    /// [`record_span`](Self::record_span) with a critical-path stage tag.
    pub fn record_span_staged(
        &self,
        name: &'static str,
        stage: &'static str,
        parent: TraceCtx,
        start_ns: u64,
        end_ns: u64,
    ) -> TraceCtx {
        let ctx = TraceCtx {
            trace_id: parent.trace_id,
            parent_span: parent.span_id,
            span_id: self.next_span_id(),
        };
        self.traces.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span: ctx.parent_span,
            node: self.node,
            name,
            stage,
            start_ns,
            end_ns,
        });
        ctx
    }
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRegistry")
            .field("node", &self.node)
            .finish()
    }
}

/// An open span; records itself into the collector when finished (or
/// dropped). Obtain the [`TraceCtx`] with [`ctx`](Self::ctx) to stamp
/// outgoing frames while the span is still open.
pub struct SpanGuard<'a> {
    registry: &'a ObsRegistry,
    name: &'static str,
    stage: &'static str,
    ctx: TraceCtx,
    start_ns: u64,
    finished: bool,
}

impl SpanGuard<'_> {
    /// The context identifying this span (propagate it downstream).
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// Sets the critical-path stage the span's duration is attributed to.
    pub fn set_stage(&mut self, stage: &'static str) {
        self.stage = stage;
    }

    /// Ends the span now.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.registry.traces.record(SpanRecord {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_span: self.ctx.parent_span,
            node: self.registry.node,
            name: self.name,
            stage: self.stage,
            start_ns: self.start_ns,
            end_ns: now_ns(),
        });
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render_trace;

    #[test]
    fn named_handles_are_shared() {
        let reg = ObsRegistry::new(3);
        reg.counter("x").inc();
        reg.counter("x").inc();
        assert_eq!(reg.counter("x").get(), 2);
        assert_eq!(reg.counters_snapshot()["x"], 2);

        reg.gauge("depth").add(5);
        assert_eq!(reg.gauges_snapshot()["depth"], 5);

        reg.histogram("lat").record(100);
        assert_eq!(reg.histograms_snapshot()["lat"].count, 1);
    }

    #[test]
    fn spans_nest_across_registries_like_nodes() {
        let client = ObsRegistry::new(0);
        let server = ObsRegistry::new(1);

        let root = client.root_span("invoke");
        let send = client.child_span("client-send", root.ctx());
        // The ctx crosses the wire; the server parents onto it.
        let wire_ctx = send.ctx();
        let dispatch = server.child_span("dispatch", wire_ctx);
        let exec = server.child_span("execute", dispatch.ctx());
        let trace_id = root.ctx().trace_id;
        exec.finish();
        dispatch.finish();
        send.finish();
        root.finish();

        let mut spans = client.traces().spans_for(trace_id);
        spans.extend(server.traces().spans_for(trace_id));
        assert_eq!(spans.len(), 4);
        // Every non-root span's parent is present: one causal tree.
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        for s in &spans {
            assert!(
                s.parent_span == 0 || ids.contains(&s.parent_span),
                "orphan {s:?}"
            );
        }
        let tree = render_trace(&spans, trace_id);
        assert!(tree.contains("execute"), "tree:\n{tree}");
    }

    #[test]
    fn sampling_always_and_never() {
        let reg = ObsRegistry::new(0);
        assert!(reg.sampled_root_span("invoke", "get").is_some());
        let recorded = reg.traces().spans().len();
        reg.set_sampling(TraceSampling::Ratio(0));
        for _ in 0..10 {
            assert!(reg.sampled_root_span("invoke", "get").is_none());
        }
        assert_eq!(reg.traces().spans().len(), recorded);
        reg.set_sampling(TraceSampling::Ratio(1));
        assert!(reg.sampled_root_span("invoke", "get").is_some());
    }

    #[test]
    fn ratio_sampling_is_deterministic_one_in_n() {
        let reg = ObsRegistry::new(0);
        reg.set_sampling(TraceSampling::Ratio(4));
        let sampled = (0..40)
            .filter(|_| reg.sampled_root_span("invoke", "get").is_some())
            .count();
        assert_eq!(sampled, 10);
    }

    #[test]
    fn per_operation_sampling_selects_by_op() {
        let reg = ObsRegistry::new(0);
        let mut ops = BTreeMap::new();
        ops.insert("add".to_string(), 1u64);
        reg.set_sampling(TraceSampling::PerOperation { ops, default: 0 });
        assert!(reg.sampled_root_span("invoke", "add").is_some());
        assert!(reg.sampled_root_span("invoke", "get").is_none());
        assert_eq!(
            reg.sampling(),
            TraceSampling::PerOperation {
                ops: [("add".to_string(), 1u64)].into_iter().collect(),
                default: 0
            }
        );
    }

    #[test]
    fn span_ids_are_node_disjoint() {
        let a = ObsRegistry::new(1);
        let b = ObsRegistry::new(2);
        let sa = a.root_span("x");
        let sb = b.root_span("x");
        assert_ne!(sa.ctx().span_id, sb.ctx().span_id);
        assert_ne!(sa.ctx().trace_id, sb.ctx().trace_id);
    }
}
