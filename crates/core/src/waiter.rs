//! Rendezvous cells for request/reply correlation.
//!
//! Every remote interaction in the kernel (invocation, checkpoint ack,
//! replica fetch, move ack, location query) is request/reply over a
//! best-effort network. A [`Waiter`] is the blocking rendezvous the
//! requesting thread parks on; the receive loop completes it when the
//! correlated reply frame arrives. [`QueryCollector`] is the multi-reply
//! variant used by the broadcast location protocol, where several nodes
//! may answer one `WhereIs`.

use std::time::{Duration, Instant};

use eden_capability::NodeId;
use eden_wire::HeldState;
use parking_lot::{Condvar, Mutex};

/// A one-shot rendezvous: one thread waits, one completes.
pub struct Waiter<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Waiter<T> {
    /// An empty waiter.
    pub fn new() -> Self {
        Waiter {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Deposits the value and wakes the waiter. A second completion is
    /// ignored (late duplicate replies are legal on a lossy network).
    pub fn complete(&self, value: T) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(value);
            self.cv.notify_all();
        }
    }

    /// Blocks until completed or `timeout` elapses.
    pub fn wait(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.lock();
        loop {
            if let Some(v) = slot.take() {
                return Some(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cv.wait_for(&mut slot, deadline - now);
        }
    }

    /// Non-blocking check.
    pub fn try_take(&self) -> Option<T> {
        self.slot.lock().take()
    }
}

impl<T> Default for Waiter<T> {
    fn default() -> Self {
        Waiter::new()
    }
}

/// One answer to a location query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationAnswer {
    /// The node that answered.
    pub holder: NodeId,
    /// How it holds the object.
    pub state: HeldState,
}

/// Collects `HereIs` answers for one broadcast `WhereIs`.
///
/// The waiter returns early as soon as an *active* holder answers (the
/// common case); otherwise it collects until the deadline so the caller
/// can pick the best passive/replica holder.
///
/// With an *expected responder count* (directory mode), the wait also
/// ends as soon as every live peer has answered — counting negative
/// (`NotHeld`) answers and peers that gossip declares dead — so a miss
/// costs one round trip instead of the full locate window.
pub struct QueryCollector {
    state: Mutex<CollectorState>,
    cv: Condvar,
}

struct CollectorState {
    answers: Vec<LocationAnswer>,
    /// Peers still expected to answer; `None` disables early return on
    /// a complete count (the seed broadcast behavior).
    outstanding: Option<usize>,
}

impl QueryCollector {
    /// A collector that waits out its deadline unless an active holder
    /// answers (seed behavior; no responder accounting).
    pub fn new() -> Self {
        QueryCollector {
            state: Mutex::new(CollectorState {
                answers: Vec::new(),
                outstanding: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// A collector that additionally completes once `expected` peers have
    /// answered or been ruled out.
    pub fn with_expected(expected: usize) -> Self {
        QueryCollector {
            state: Mutex::new(CollectorState {
                answers: Vec::new(),
                outstanding: Some(expected),
            }),
            cv: Condvar::new(),
        }
    }

    /// Records one positive answer.
    pub fn add(&self, answer: LocationAnswer) {
        let mut state = self.state.lock();
        state.answers.push(answer);
        if let Some(n) = state.outstanding.as_mut() {
            *n = n.saturating_sub(1);
        }
        self.cv.notify_all();
    }

    /// Records a negative (`NotHeld`) answer: the peer responded but does
    /// not hold the object.
    pub fn add_negative(&self) {
        let mut state = self.state.lock();
        if let Some(n) = state.outstanding.as_mut() {
            *n = n.saturating_sub(1);
        }
        self.cv.notify_all();
    }

    /// Rules a peer out without an answer (gossip declared it dead while
    /// the query was pending).
    pub fn note_unreachable(&self) {
        self.add_negative();
    }

    /// Waits until an active holder answers, every expected peer has
    /// responded or been ruled out, or `timeout` elapses; returns
    /// everything collected.
    pub fn wait(&self, timeout: Duration) -> Vec<LocationAnswer> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock();
        loop {
            if state.answers.iter().any(|a| a.state == HeldState::Active) {
                return state.answers.clone();
            }
            if state.outstanding == Some(0) {
                return state.answers.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return state.answers.clone();
            }
            self.cv.wait_for(&mut state, deadline - now);
        }
    }
}

impl Default for QueryCollector {
    fn default() -> Self {
        QueryCollector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn complete_before_wait_returns_immediately() {
        let w = Waiter::new();
        w.complete(5);
        assert_eq!(w.wait(Duration::from_millis(1)), Some(5));
    }

    #[test]
    fn wait_times_out_without_completion() {
        let w: Waiter<u32> = Waiter::new();
        let start = Instant::now();
        assert_eq!(w.wait(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(28));
    }

    #[test]
    fn cross_thread_completion_wakes_waiter() {
        let w = Arc::new(Waiter::new());
        let w2 = w.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.complete("done");
        });
        assert_eq!(w.wait(Duration::from_secs(2)), Some("done"));
        t.join().unwrap();
    }

    #[test]
    fn duplicate_completion_is_ignored() {
        let w = Waiter::new();
        w.complete(1);
        w.complete(2);
        assert_eq!(w.wait(Duration::from_millis(1)), Some(1));
    }

    #[test]
    fn collector_returns_early_on_active_answer() {
        let c = Arc::new(QueryCollector::new());
        let c2 = c.clone();
        let t = std::thread::spawn(move || {
            c2.add(LocationAnswer {
                holder: NodeId(3),
                state: HeldState::Passive,
            });
            std::thread::sleep(Duration::from_millis(10));
            c2.add(LocationAnswer {
                holder: NodeId(4),
                state: HeldState::Active,
            });
        });
        let start = Instant::now();
        let answers = c.wait(Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "must not wait out the deadline"
        );
        assert_eq!(answers.len(), 2);
        t.join().unwrap();
    }

    #[test]
    fn collector_returns_passives_at_deadline() {
        let c = QueryCollector::new();
        c.add(LocationAnswer {
            holder: NodeId(1),
            state: HeldState::Passive,
        });
        let answers = c.wait(Duration::from_millis(20));
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].state, HeldState::Passive);
    }

    #[test]
    fn collector_completes_early_once_every_peer_responds() {
        let c = QueryCollector::with_expected(3);
        c.add_negative();
        c.add(LocationAnswer {
            holder: NodeId(2),
            state: HeldState::Passive,
        });
        c.add_negative();
        let start = Instant::now();
        let answers = c.wait(Duration::from_secs(5));
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "all expected peers answered; the wait must not sleep out the window"
        );
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].state, HeldState::Passive);
    }

    #[test]
    fn collector_completes_when_gossip_rules_out_the_last_peer() {
        let c = Arc::new(QueryCollector::with_expected(2));
        c.add_negative();
        let c2 = c.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            c2.note_unreachable();
        });
        let start = Instant::now();
        let answers = c.wait(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_millis(500));
        assert!(answers.is_empty());
        t.join().unwrap();
    }

    #[test]
    fn seed_collector_still_waits_out_the_window() {
        let c = QueryCollector::new();
        c.add_negative(); // no accounting without an expected count
        let start = Instant::now();
        let answers = c.wait(Duration::from_millis(30));
        assert!(start.elapsed() >= Duration::from_millis(28));
        assert!(answers.is_empty());
    }
}
