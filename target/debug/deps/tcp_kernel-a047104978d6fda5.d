/root/repo/target/debug/deps/tcp_kernel-a047104978d6fda5.d: tests/tcp_kernel.rs

/root/repo/target/debug/deps/tcp_kernel-a047104978d6fda5: tests/tcp_kernel.rs

tests/tcp_kernel.rs:
