/root/repo/target/debug/examples/eden_shell-c5b369fddd1e9560.d: examples/eden_shell.rs

/root/repo/target/debug/examples/eden_shell-c5b369fddd1e9560: examples/eden_shell.rs

examples/eden_shell.rs:
