/root/repo/target/debug/deps/ethernet-c7e448f2eb0a9778.d: crates/bench/benches/ethernet.rs Cargo.toml

/root/repo/target/debug/deps/libethernet-c7e448f2eb0a9778.rmeta: crates/bench/benches/ethernet.rs Cargo.toml

crates/bench/benches/ethernet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
