//! Kernel event counters.
//!
//! Every mechanism under measurement in EXPERIMENTS.md increments a
//! counter here, so experiments can assert *mechanism* effects (e.g.
//! "after caching the frozen replica, remote invocations stop") rather
//! than inferring them from timing alone.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of one node's kernel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelMetrics {
    /// Invocations executed against local objects (including replicas).
    pub local_invocations: u64,
    /// Invocations sent to another node.
    pub remote_invocations_sent: u64,
    /// Invocation requests received from other nodes.
    pub remote_invocations_served: u64,
    /// Requests forwarded along a post-move forwarding address.
    pub forwards: u64,
    /// Broadcast `WhereIs` queries issued.
    pub location_broadcasts: u64,
    /// Location answers served from the hint cache.
    pub location_cache_hits: u64,
    /// Reincarnations performed (§4.2/§4.4).
    pub reincarnations: u64,
    /// Checkpoints written (locally or to a remote checksite).
    pub checkpoints: u64,
    /// Objects crashed via the crash primitive.
    pub crashes: u64,
    /// Objects moved away from this node.
    pub moves_out: u64,
    /// Objects installed by an inbound move.
    pub moves_in: u64,
    /// Frozen replicas cached on this node.
    pub replicas_cached: u64,
    /// Invocations that returned `Status::Timeout`.
    pub timeouts: u64,
    /// Invocations rejected for insufficient rights.
    pub rights_violations: u64,
    /// Invocation processes spawned (the paper's per-invocation
    /// processes).
    pub invocation_processes: u64,
    /// Invocations that waited in a class queue before dispatch.
    pub class_queued: u64,
}

/// Shared counter cell.
#[derive(Debug, Default)]
pub struct MetricsCell {
    pub(crate) local_invocations: AtomicU64,
    pub(crate) remote_invocations_sent: AtomicU64,
    pub(crate) remote_invocations_served: AtomicU64,
    pub(crate) forwards: AtomicU64,
    pub(crate) location_broadcasts: AtomicU64,
    pub(crate) location_cache_hits: AtomicU64,
    pub(crate) reincarnations: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    pub(crate) crashes: AtomicU64,
    pub(crate) moves_out: AtomicU64,
    pub(crate) moves_in: AtomicU64,
    pub(crate) replicas_cached: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) rights_violations: AtomicU64,
    pub(crate) invocation_processes: AtomicU64,
    pub(crate) class_queued: AtomicU64,
}

macro_rules! bump {
    ($($field:ident => $method:ident),* $(,)?) => {
        impl MetricsCell {
            $(
                /// Increments the corresponding counter.
                pub(crate) fn $method(&self) {
                    self.$field.fetch_add(1, Ordering::Relaxed);
                }
            )*
        }
    };
}

bump! {
    local_invocations => bump_local,
    remote_invocations_sent => bump_remote_sent,
    remote_invocations_served => bump_remote_served,
    forwards => bump_forward,
    location_broadcasts => bump_broadcast,
    location_cache_hits => bump_cache_hit,
    reincarnations => bump_reincarnation,
    checkpoints => bump_checkpoint,
    crashes => bump_crash,
    moves_out => bump_move_out,
    moves_in => bump_move_in,
    replicas_cached => bump_replica,
    timeouts => bump_timeout,
    rights_violations => bump_rights_violation,
    invocation_processes => bump_process,
    class_queued => bump_class_queued,
}

impl MetricsCell {
    /// Takes a snapshot of every counter.
    pub fn snapshot(&self) -> KernelMetrics {
        KernelMetrics {
            local_invocations: self.local_invocations.load(Ordering::Relaxed),
            remote_invocations_sent: self.remote_invocations_sent.load(Ordering::Relaxed),
            remote_invocations_served: self.remote_invocations_served.load(Ordering::Relaxed),
            forwards: self.forwards.load(Ordering::Relaxed),
            location_broadcasts: self.location_broadcasts.load(Ordering::Relaxed),
            location_cache_hits: self.location_cache_hits.load(Ordering::Relaxed),
            reincarnations: self.reincarnations.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            moves_out: self.moves_out.load(Ordering::Relaxed),
            moves_in: self.moves_in.load(Ordering::Relaxed),
            replicas_cached: self.replicas_cached.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            rights_violations: self.rights_violations.load(Ordering::Relaxed),
            invocation_processes: self.invocation_processes.load(Ordering::Relaxed),
            class_queued: self.class_queued.load(Ordering::Relaxed),
        }
    }
}

impl KernelMetrics {
    /// The difference `self - earlier`, for measuring an interval.
    #[must_use]
    pub fn delta(&self, earlier: &KernelMetrics) -> KernelMetrics {
        KernelMetrics {
            local_invocations: self.local_invocations - earlier.local_invocations,
            remote_invocations_sent: self.remote_invocations_sent - earlier.remote_invocations_sent,
            remote_invocations_served: self.remote_invocations_served
                - earlier.remote_invocations_served,
            forwards: self.forwards - earlier.forwards,
            location_broadcasts: self.location_broadcasts - earlier.location_broadcasts,
            location_cache_hits: self.location_cache_hits - earlier.location_cache_hits,
            reincarnations: self.reincarnations - earlier.reincarnations,
            checkpoints: self.checkpoints - earlier.checkpoints,
            crashes: self.crashes - earlier.crashes,
            moves_out: self.moves_out - earlier.moves_out,
            moves_in: self.moves_in - earlier.moves_in,
            replicas_cached: self.replicas_cached - earlier.replicas_cached,
            timeouts: self.timeouts - earlier.timeouts,
            rights_violations: self.rights_violations - earlier.rights_violations,
            invocation_processes: self.invocation_processes - earlier.invocation_processes,
            class_queued: self.class_queued - earlier.class_queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_show_in_snapshot() {
        let m = MetricsCell::default();
        m.bump_local();
        m.bump_local();
        m.bump_reincarnation();
        let s = m.snapshot();
        assert_eq!(s.local_invocations, 2);
        assert_eq!(s.reincarnations, 1);
        assert_eq!(s.remote_invocations_sent, 0);
    }

    #[test]
    fn delta_isolates_an_interval() {
        let m = MetricsCell::default();
        m.bump_checkpoint();
        let before = m.snapshot();
        m.bump_checkpoint();
        m.bump_checkpoint();
        let d = m.snapshot().delta(&before);
        assert_eq!(d.checkpoints, 2);
    }
}
