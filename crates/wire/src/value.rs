//! The invocation parameter algebra.
//!
//! Invocation parameters and results are lists of [`Value`]s: plain data
//! (there is no shared memory between objects, §2) or capabilities, which
//! are the only way authority moves through the system.

use std::collections::BTreeMap;

use bytes::Bytes;
use eden_capability::Capability;

use crate::codec::{CodecError, Reader, WireDecode, WireEncode, Writer};

/// A single invocation parameter or result.
///
/// # Examples
///
/// ```
/// use eden_wire::Value;
///
/// let v = Value::List(vec![Value::I64(1), Value::Str("two".into())]);
/// assert_eq!(v.type_name(), "list");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The absence of a value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    I64(i64),
    /// An unsigned 64-bit integer.
    U64(u64),
    /// A 64-bit IEEE-754 float.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An uninterpreted byte string.
    Blob(Bytes),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map of values (deterministic order).
    Map(BTreeMap<String, Value>),
    /// A capability — the only value that conveys authority.
    Cap(Capability),
}

impl Value {
    /// A short name for the value's runtime type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Str(_) => "str",
            Value::Blob(_) => "blob",
            Value::List(_) => "list",
            Value::Map(_) => "map",
            Value::Cap(_) => "cap",
        }
    }

    /// Extracts a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts an `i64`, if this is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `u64`, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `f64`, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts the byte string, if this is a blob.
    pub fn as_blob(&self) -> Option<&Bytes> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts the element list, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts the map, if this is a map.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Extracts a capability, if this is one.
    pub fn as_cap(&self) -> Option<Capability> {
        match self {
            Value::Cap(c) => Some(*c),
            _ => None,
        }
    }

    /// The approximate encoded size in bytes, used for flow accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Unit => 1,
            Value::Bool(_) => 2,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Blob(b) => 5 + b.len(),
            Value::List(v) => 5 + v.iter().map(Value::wire_size).sum::<usize>(),
            Value::Map(m) => {
                5 + m
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.wire_size())
                    .sum::<usize>()
            }
            Value::Cap(_) => 21,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Bytes> for Value {
    fn from(v: Bytes) -> Self {
        Value::Blob(v)
    }
}

impl From<Capability> for Value {
    fn from(v: Capability) -> Self {
        Value::Cap(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BLOB: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_MAP: u8 = 8;
const TAG_CAP: u8 = 9;

impl WireEncode for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Unit => w.put_u8(TAG_UNIT),
            Value::Bool(b) => {
                w.put_u8(TAG_BOOL);
                w.put_bool(*b);
            }
            Value::I64(v) => {
                w.put_u8(TAG_I64);
                w.put_i64(*v);
            }
            Value::U64(v) => {
                w.put_u8(TAG_U64);
                w.put_u64(*v);
            }
            Value::F64(v) => {
                w.put_u8(TAG_F64);
                w.put_f64(*v);
            }
            Value::Str(s) => {
                w.put_u8(TAG_STR);
                w.put_str(s);
            }
            Value::Blob(b) => {
                w.put_u8(TAG_BLOB);
                w.put_bytes(b);
            }
            Value::List(items) => {
                w.put_u8(TAG_LIST);
                w.put_seq(items);
            }
            Value::Map(m) => {
                w.put_u8(TAG_MAP);
                w.put_u32(m.len() as u32);
                for (k, v) in m {
                    w.put_str(k);
                    v.encode(w);
                }
            }
            Value::Cap(c) => {
                w.put_u8(TAG_CAP);
                c.encode(w);
            }
        }
    }
}

impl WireDecode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_UNIT => Ok(Value::Unit),
            TAG_BOOL => Ok(Value::Bool(r.get_bool()?)),
            TAG_I64 => Ok(Value::I64(r.get_i64()?)),
            TAG_U64 => Ok(Value::U64(r.get_u64()?)),
            TAG_F64 => Ok(Value::F64(r.get_f64()?)),
            TAG_STR => Ok(Value::Str(r.get_str()?)),
            TAG_BLOB => Ok(Value::Blob(r.get_bytes()?)),
            TAG_LIST => Ok(Value::List(r.get_seq()?)),
            TAG_MAP => {
                let n = r.get_u32()? as usize;
                let mut m = BTreeMap::new();
                for _ in 0..n {
                    let k = r.get_str()?;
                    let v = Value::decode(r)?;
                    m.insert(k, v);
                }
                Ok(Value::Map(m))
            }
            TAG_CAP => Ok(Value::Cap(Capability::decode(r)?)),
            tag => Err(CodecError::BadTag { what: "Value", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, NodeId, Rights};
    use proptest::prelude::*;

    fn any_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Unit),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::I64),
            any::<u64>().prop_map(Value::U64),
            // NaN breaks PartialEq round-trip comparison; use finite floats.
            (-1e30f64..1e30).prop_map(Value::F64),
            ".{0,32}".prop_map(Value::Str),
            proptest::collection::vec(0u8.., 0..64).prop_map(|v| Value::Blob(Bytes::from(v))),
            (0u16.., 0u32.., 0u64.., 0u32..).prop_map(|(n, e, s, rights)| {
                Value::Cap(Capability::with_rights(
                    eden_capability::ObjName::from_parts(NodeId(n), e, s),
                    Rights::from_bits(rights),
                ))
            }),
        ];
        leaf.prop_recursive(3, 32, 8, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..8).prop_map(Value::List),
                proptest::collection::btree_map("[a-z]{1,5}", inner, 0..8).prop_map(Value::Map),
            ]
        })
    }

    proptest! {
        #[test]
        fn value_round_trips(v in any_value()) {
            let buf = v.encode_to_bytes();
            prop_assert_eq!(Value::decode_from_bytes(&buf).unwrap(), v);
        }

        #[test]
        fn wire_size_is_exact_for_flat_values(s in ".{0,64}") {
            let v = Value::Str(s);
            prop_assert_eq!(v.wire_size(), v.encode_to_bytes().len());
        }
    }

    #[test]
    fn accessors_match_variants() {
        let g = NameGenerator::with_epoch(NodeId(1), 1);
        let cap = Capability::mint(g.next_name());
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::I64(-3).as_i64(), Some(-3));
        assert_eq!(Value::U64(3).as_u64(), Some(3));
        assert_eq!(Value::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Cap(cap).as_cap(), Some(cap));
        assert_eq!(Value::I64(1).as_str(), None);
        assert_eq!(Value::Unit.as_cap(), None);
    }

    #[test]
    fn conversions_build_expected_variants() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::I64(7));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(
            Value::from(vec![Value::Unit]),
            Value::List(vec![Value::Unit])
        );
    }

    #[test]
    fn nested_value_round_trips() {
        let mut m = BTreeMap::new();
        m.insert(
            "k".to_string(),
            Value::List(vec![Value::I64(1), Value::Unit]),
        );
        let v = Value::Map(m);
        let buf = v.encode_to_bytes();
        assert_eq!(Value::decode_from_bytes(&buf).unwrap(), v);
    }
}
