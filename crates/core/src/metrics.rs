//! Kernel event counters.
//!
//! Every mechanism under measurement in EXPERIMENTS.md increments a
//! counter here, so experiments can assert *mechanism* effects (e.g.
//! "after caching the frozen replica, remote invocations stop") rather
//! than inferring them from timing alone.
//!
//! [`MetricsCell`] is a facade over the node's
//! [`ObsRegistry`](eden_obs::ObsRegistry): each counter is registered
//! there under `kernel.<name>`, so the same numbers surface through the
//! registry's snapshot (and the shell's `metrics` command) while this
//! module keeps its original typed [`KernelMetrics`] snapshot API.

use std::sync::Arc;

use eden_obs::{Counter, ObsRegistry};

macro_rules! metrics {
    ($($(#[$doc:meta])* $field:ident => $method:ident),* $(,)?) => {
        /// A point-in-time snapshot of one node's kernel counters.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct KernelMetrics {
            $($(#[$doc])* pub $field: u64,)*
        }

        /// Shared counter cell; the counters live in the node's
        /// observability registry.
        pub struct MetricsCell {
            $(pub(crate) $field: Arc<Counter>,)*
        }

        impl MetricsCell {
            /// Builds the cell over `obs`, registering each counter as
            /// `kernel.<field>`.
            pub(crate) fn new(obs: &ObsRegistry) -> Self {
                MetricsCell {
                    $($field: obs.counter(concat!("kernel.", stringify!($field))),)*
                }
            }

            $(
                /// Increments the corresponding counter.
                pub(crate) fn $method(&self) {
                    self.$field.inc();
                }
            )*

            /// Takes a snapshot of every counter.
            pub fn snapshot(&self) -> KernelMetrics {
                KernelMetrics {
                    $($field: self.$field.get(),)*
                }
            }
        }

        impl Default for MetricsCell {
            /// Standalone counters, unattached to any registry (tests).
            fn default() -> Self {
                MetricsCell {
                    $($field: Arc::new(Counter::new()),)*
                }
            }
        }

        impl KernelMetrics {
            /// The difference `self - earlier`, for measuring an interval.
            #[must_use]
            pub fn delta(&self, earlier: &KernelMetrics) -> KernelMetrics {
                KernelMetrics {
                    $($field: self.$field - earlier.$field,)*
                }
            }
        }
    };
}

metrics! {
    /// Invocations executed against local objects (including replicas).
    local_invocations => bump_local,
    /// Invocations sent to another node.
    remote_invocations_sent => bump_remote_sent,
    /// Invocation requests received from other nodes.
    remote_invocations_served => bump_remote_served,
    /// Requests forwarded along a post-move forwarding address.
    forwards => bump_forward,
    /// Broadcast `WhereIs` queries issued.
    location_broadcasts => bump_broadcast,
    /// Location answers served from the hint cache.
    location_cache_hits => bump_cache_hit,
    /// Reincarnations performed (§4.2/§4.4).
    reincarnations => bump_reincarnation,
    /// Checkpoints written (locally or to a remote checksite).
    checkpoints => bump_checkpoint,
    /// Objects crashed via the crash primitive.
    crashes => bump_crash,
    /// Objects moved away from this node.
    moves_out => bump_move_out,
    /// Objects installed by an inbound move.
    moves_in => bump_move_in,
    /// Frozen replicas cached on this node.
    replicas_cached => bump_replica,
    /// Invocations that returned `Status::Timeout`.
    timeouts => bump_timeout,
    /// Invocations rejected for insufficient rights.
    rights_violations => bump_rights_violation,
    /// Invocation processes spawned (the paper's per-invocation
    /// processes).
    invocation_processes => bump_process,
    /// Invocations that waited in a class queue before dispatch.
    class_queued => bump_class_queued,
    /// Locate queries sent to an object's directory home node.
    directory_queries => bump_dir_query,
    /// Directory answers that named a usable holder.
    directory_hits => bump_dir_hit,
    /// Holder registrations sent to (or applied at) a home node.
    directory_registrations => bump_dir_register,
    /// Directory queries answered from the local shard.
    directory_answers_served => bump_dir_served,
    /// Peers this node's gossip declared dead.
    gossip_deaths => bump_gossip_dead,
    /// Location hints evicted by the cache's LRU cap.
    location_cache_evictions => bump_cache_eviction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_show_in_snapshot() {
        let m = MetricsCell::default();
        m.bump_local();
        m.bump_local();
        m.bump_reincarnation();
        let s = m.snapshot();
        assert_eq!(s.local_invocations, 2);
        assert_eq!(s.reincarnations, 1);
        assert_eq!(s.remote_invocations_sent, 0);
    }

    #[test]
    fn delta_isolates_an_interval() {
        let m = MetricsCell::default();
        m.bump_checkpoint();
        let before = m.snapshot();
        m.bump_checkpoint();
        m.bump_checkpoint();
        let d = m.snapshot().delta(&before);
        assert_eq!(d.checkpoints, 2);
    }

    #[test]
    fn registry_backed_counters_share_state() {
        let obs = ObsRegistry::new(7);
        let m = MetricsCell::new(&obs);
        m.bump_broadcast();
        m.bump_broadcast();
        assert_eq!(m.snapshot().location_broadcasts, 2);
        assert_eq!(
            obs.counters_snapshot()["kernel.location_broadcasts"],
            2,
            "facade and registry must observe the same counter"
        );
    }
}
