/root/repo/target/debug/deps/eden_efs-a65bbdd78ebcaeaa.d: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs Cargo.toml

/root/repo/target/debug/deps/libeden_efs-a65bbdd78ebcaeaa.rmeta: crates/efs/src/lib.rs crates/efs/src/dir.rs crates/efs/src/efs.rs crates/efs/src/file.rs crates/efs/src/records.rs crates/efs/src/txn.rs Cargo.toml

crates/efs/src/lib.rs:
crates/efs/src/dir.rs:
crates/efs/src/efs.rs:
crates/efs/src/file.rs:
crates/efs/src/records.rs:
crates/efs/src/txn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
