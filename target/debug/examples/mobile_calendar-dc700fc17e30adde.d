/root/repo/target/debug/examples/mobile_calendar-dc700fc17e30adde.d: examples/mobile_calendar.rs

/root/repo/target/debug/examples/mobile_calendar-dc700fc17e30adde: examples/mobile_calendar.rs

examples/mobile_calendar.rs:
