//! Fault injection for checkpoint storage.
//!
//! The Eden kernel "is being designed to be tolerant of failures in its
//! components" (§2). [`FaultyStore`] wraps any [`CheckpointStore`] and
//! makes its failure modes scriptable so tests can drive the kernel and
//! the replicated store through storage faults deterministically: failed
//! writes, failed reads, silent payload corruption, and one-shot faults
//! that heal afterwards.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use eden_capability::ObjName;

use crate::{CheckpointStore, StoreError};

/// Which operations fail, and for how long.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Fail the next N writes (u64::MAX = forever).
    fail_writes: AtomicU64,
    /// Fail the next N reads (u64::MAX = forever).
    fail_reads: AtomicU64,
    /// Corrupt the payload of the next N reads (bit-flip the first byte).
    corrupt_reads: AtomicU64,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Every write fails until the plan is changed.
    pub fn fail_all_writes() -> Self {
        let p = FaultPlan::default();
        p.fail_writes.store(u64::MAX, Ordering::Relaxed);
        p
    }

    /// Every read fails until the plan is changed.
    pub fn fail_all_reads() -> Self {
        let p = FaultPlan::default();
        p.fail_reads.store(u64::MAX, Ordering::Relaxed);
        p
    }

    /// Fail exactly the next `n` writes, then heal.
    pub fn fail_next_writes(n: u64) -> Self {
        let p = FaultPlan::default();
        p.fail_writes.store(n, Ordering::Relaxed);
        p
    }

    /// Corrupt exactly the next `n` reads, then heal.
    pub fn corrupt_next_reads(n: u64) -> Self {
        let p = FaultPlan::default();
        p.corrupt_reads.store(n, Ordering::Relaxed);
        p
    }

    fn consume(counter: &AtomicU64) -> bool {
        loop {
            let cur = counter.load(Ordering::Relaxed);
            if cur == 0 {
                return false;
            }
            if cur == u64::MAX {
                return true;
            }
            if counter
                .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }
}

/// A [`CheckpointStore`] wrapper that injects faults per a [`FaultPlan`].
pub struct FaultyStore<S> {
    inner: S,
    plan: FaultPlan,
}

impl<S: CheckpointStore> FaultyStore<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStore { inner, plan }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Re-arms the plan (e.g. heal, then later fail again).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.plan
            .fail_writes
            .store(plan.fail_writes.load(Ordering::Relaxed), Ordering::Relaxed);
        self.plan
            .fail_reads
            .store(plan.fail_reads.load(Ordering::Relaxed), Ordering::Relaxed);
        self.plan.corrupt_reads.store(
            plan.corrupt_reads.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
}

impl<S: CheckpointStore> CheckpointStore for FaultyStore<S> {
    fn put(&self, name: ObjName, image: &[u8]) -> Result<u64, StoreError> {
        if FaultPlan::consume(&self.plan.fail_writes) {
            return Err(StoreError::Injected("write failure"));
        }
        self.inner.put(name, image)
    }

    fn latest(&self, name: ObjName) -> Result<Option<(u64, Bytes)>, StoreError> {
        if FaultPlan::consume(&self.plan.fail_reads) {
            return Err(StoreError::Injected("read failure"));
        }
        let result = self.inner.latest(name)?;
        if FaultPlan::consume(&self.plan.corrupt_reads) {
            if let Some((v, data)) = result {
                let mut corrupted = data.to_vec();
                if let Some(b) = corrupted.first_mut() {
                    *b ^= 0xff;
                }
                return Ok(Some((v, Bytes::from(corrupted))));
            }
        }
        Ok(result)
    }

    fn get(&self, name: ObjName, version: u64) -> Result<Option<Bytes>, StoreError> {
        if FaultPlan::consume(&self.plan.fail_reads) {
            return Err(StoreError::Injected("read failure"));
        }
        self.inner.get(name, version)
    }

    fn versions(&self, name: ObjName) -> Result<Vec<u64>, StoreError> {
        self.inner.versions(name)
    }

    fn delete(&self, name: ObjName) -> Result<(), StoreError> {
        if FaultPlan::consume(&self.plan.fail_writes) {
            return Err(StoreError::Injected("write failure"));
        }
        self.inner.delete(name)
    }

    fn names(&self) -> Result<Vec<ObjName>, StoreError> {
        self.inner.names()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use eden_capability::{NameGenerator, NodeId};

    fn name() -> ObjName {
        NameGenerator::with_epoch(NodeId(9), 1).next_name()
    }

    #[test]
    fn no_faults_passes_through() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::none());
        let n = name();
        store.put(n, b"x").unwrap();
        assert_eq!(&store.latest(n).unwrap().unwrap().1[..], b"x");
    }

    #[test]
    fn one_shot_write_fault_heals() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::fail_next_writes(1));
        let n = name();
        assert!(store.put(n, b"fails").is_err());
        store.put(n, b"succeeds").unwrap();
        assert_eq!(&store.latest(n).unwrap().unwrap().1[..], b"succeeds");
    }

    #[test]
    fn corrupting_read_flips_payload() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::corrupt_next_reads(1));
        let n = name();
        store.put(n, b"pristine").unwrap();
        let (_, corrupted) = store.latest(n).unwrap().unwrap();
        assert_ne!(&corrupted[..], b"pristine");
        let (_, healed) = store.latest(n).unwrap().unwrap();
        assert_eq!(&healed[..], b"pristine");
    }

    #[test]
    fn set_plan_rearms() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::none());
        let n = name();
        store.put(n, b"ok").unwrap();
        store.set_plan(FaultPlan::fail_all_reads());
        assert!(store.latest(n).is_err());
        store.set_plan(FaultPlan::none());
        assert!(store.latest(n).is_ok());
    }
}
