//! E7 — Ethernet behaviour: the Almes & Lazowska (SOSP '79) curves.
//!
//! Throughput, mean access delay and collisions/frame as offered load
//! sweeps 0.1–2.0 of capacity, for several station counts and frame
//! sizes, plus the Metcalfe-Boggs analytic saturation efficiency for
//! comparison. Expected shape: throughput tracks offered load up to
//! saturation and then plateaus (higher for large frames, lower for
//! many stations); delay and collision rate explode past saturation.

use eden_ethersim::aloha::slotted_aloha_throughput;
use eden_ethersim::analytic::saturation_efficiency;
use eden_ethersim::{
    AlohaConfig, AlohaSim, EthernetConfig, EthernetSim, FrameSizes, Report, Workload,
};

use crate::table::Table;

/// One simulated point (1 simulated second, fixed seed).
pub fn sim_point(stations: usize, offered_load: f64, frame_bytes: u32, seed: u64) -> Report {
    EthernetSim::new(
        EthernetConfig::dix(),
        Workload {
            stations,
            offered_load,
            frame_sizes: FrameSizes::Fixed(frame_bytes),
        },
        seed,
    )
    .run(1.0)
}

/// The load sweep for one (stations, frame size) pair.
pub fn load_sweep(stations: usize, frame_bytes: u32) -> Table {
    let mut t = Table::new(
        format!("E7 — Ethernet load sweep ({stations} stations, {frame_bytes}-byte frames)"),
        &[
            "offered",
            "throughput",
            "mean delay",
            "p95 delay",
            "coll/frame",
            "fairness",
        ],
    );
    for load in [0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.5, 2.0] {
        let r = sim_point(stations, load, frame_bytes, 1979);
        t.row(vec![
            format!("{load:.1}"),
            format!("{:.3}", r.throughput),
            format!("{:.0} µs", r.mean_delay_us),
            format!("{:.0} µs", r.p95_delay_us),
            format!("{:.3}", r.collisions_per_frame()),
            format!("{:.3}", r.fairness),
        ]);
    }
    let model = saturation_efficiency(stations, frame_bytes as u64 * 8, 512);
    t.note(format!(
        "Metcalfe-Boggs saturation efficiency for this point: {model:.3} (payload-only sim throughput runs lower by header overhead)"
    ));
    t
}

/// The station-count table at fixed overload (the capacity-division
/// figure).
pub fn station_sweep(frame_bytes: u32) -> Table {
    let mut t = Table::new(
        format!("E7 — saturation throughput vs stations ({frame_bytes}-byte frames, offered 1.5)"),
        &[
            "stations",
            "throughput",
            "coll/frame",
            "analytic efficiency",
        ],
    );
    for stations in [2usize, 5, 16, 64] {
        let r = sim_point(stations, 1.5, frame_bytes, 12);
        t.row(vec![
            stations.to_string(),
            format!("{:.3}", r.throughput),
            format!("{:.3}", r.collisions_per_frame()),
            format!(
                "{:.3}",
                saturation_efficiency(stations, frame_bytes as u64 * 8, 512)
            ),
        ]);
    }
    t.note("expected shape: efficiency falls slowly with station count; large frames stay >0.8");
    t
}

/// CSMA/CD vs the slotted-ALOHA baseline over the identical workload —
/// what carrier sense and collision detection buy.
pub fn protocol_comparison() -> Table {
    let mut t = Table::new(
        "E7 — CSMA/CD vs slotted ALOHA (16 stations, 1000-byte frames)",
        &[
            "offered",
            "csma/cd tput",
            "aloha tput",
            "aloha model S=Ge^-G",
            "csma advantage",
        ],
    );
    for load in [0.1, 0.3, 0.5, 0.9, 1.5] {
        let workload = Workload {
            stations: 16,
            offered_load: load,
            frame_sizes: FrameSizes::Fixed(1000),
        };
        let csma = EthernetSim::new(EthernetConfig::dix(), workload, 1973).run(1.0);
        let aloha = AlohaSim::new(AlohaConfig::classic(1000), workload, 1973).run(1.0);
        t.row(vec![
            format!("{load:.1}"),
            format!("{:.3}", csma.throughput),
            format!("{:.3}", aloha.throughput),
            format!("{:.3}", slotted_aloha_throughput(load)),
            format!("{:.1}×", csma.throughput / aloha.throughput.max(1e-9)),
        ]);
    }
    t.note("expected shape: identical below ALOHA's knee; past G=1 ALOHA collapses toward 1/e while CSMA/CD holds >0.9");
    t
}

/// Prometheus exposition of the headline E7 curves. Simulator outputs
/// are fractional (f64) gauges, not kernel metrics, so the lines are
/// written directly rather than through the kernel exporter.
pub fn prom_artifact() -> String {
    let mut out = String::new();
    out.push_str("# TYPE eden_e7_throughput gauge\n");
    out.push_str("# TYPE eden_e7_mean_delay_us gauge\n");
    out.push_str("# TYPE eden_e7_collisions_per_frame gauge\n");
    for load in [0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.5, 2.0] {
        let r = sim_point(16, load, 1000, 1979);
        let labels = format!("stations=\"16\",frame_bytes=\"1000\",offered=\"{load:.1}\"");
        out.push_str(&format!(
            "eden_e7_throughput{{{labels}}} {:.6}\n",
            r.throughput
        ));
        out.push_str(&format!(
            "eden_e7_mean_delay_us{{{labels}}} {:.3}\n",
            r.mean_delay_us
        ));
        out.push_str(&format!(
            "eden_e7_collisions_per_frame{{{labels}}} {:.6}\n",
            r.collisions_per_frame()
        ));
    }
    for stations in [2usize, 5, 16, 64] {
        let r = sim_point(stations, 1.5, 1500, 12);
        let labels = format!("stations=\"{stations}\",frame_bytes=\"1500\",offered=\"1.5\"");
        out.push_str(&format!(
            "eden_e7_throughput{{{labels}}} {:.6}\n",
            r.throughput
        ));
    }
    out
}

/// Runs E7 and returns its tables.
pub fn run() -> Vec<Table> {
    let tables = vec![
        load_sweep(16, 1000),
        load_sweep(16, 64),
        station_sweep(1500),
        station_sweep(64),
        protocol_comparison(),
    ];
    let _ = std::fs::write(crate::artifact_path("e7.prom"), prom_artifact());
    tables
}
