//! Traffic generation: Poisson arrivals and frame-size distributions.

use rand::rngs::SmallRng;
use rand::Rng;

/// Frame payload size distributions used in the Ethernet experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameSizes {
    /// Every frame carries exactly this many bytes.
    Fixed(u32),
    /// Uniform between the bounds, inclusive.
    Uniform(u32, u32),
    /// The classic bimodal LAN mix: small frames (acks, invocations) with
    /// probability `p_small`, large frames otherwise.
    Bimodal {
        /// Size of small frames, bytes.
        small: u32,
        /// Size of large frames, bytes.
        large: u32,
        /// Probability of a small frame.
        p_small: f64,
    },
}

impl FrameSizes {
    /// Draws one frame size in bytes.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        match *self {
            FrameSizes::Fixed(n) => n,
            FrameSizes::Uniform(lo, hi) => rng.random_range(lo..=hi),
            FrameSizes::Bimodal {
                small,
                large,
                p_small,
            } => {
                if rng.random::<f64>() < p_small {
                    small
                } else {
                    large
                }
            }
        }
    }

    /// The expected frame size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        match *self {
            FrameSizes::Fixed(n) => n as f64,
            FrameSizes::Uniform(lo, hi) => (lo as f64 + hi as f64) / 2.0,
            FrameSizes::Bimodal {
                small,
                large,
                p_small,
            } => small as f64 * p_small + large as f64 * (1.0 - p_small),
        }
    }
}

/// An open-loop workload: each station receives frames by a Poisson
/// process sized so the aggregate offered load is a chosen fraction of
/// channel capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Number of stations on the bus.
    pub stations: usize,
    /// Aggregate offered load as a fraction of channel capacity
    /// (1.0 = arrivals exactly fill the channel; > 1.0 oversubscribes).
    pub offered_load: f64,
    /// Frame size distribution.
    pub frame_sizes: FrameSizes,
}

impl Workload {
    /// Per-station mean interarrival time in nanoseconds at `bit_rate_bps`.
    pub fn mean_interarrival_ns(&self, bit_rate_bps: u64) -> f64 {
        let aggregate_bps = self.offered_load * bit_rate_bps as f64;
        let per_station_bps = aggregate_bps / self.stations as f64;
        let mean_frame_bits = self.frame_sizes.mean_bytes() * 8.0;
        mean_frame_bits / per_station_bps * 1e9
    }

    /// Draws one exponential interarrival gap in nanoseconds.
    pub fn sample_interarrival_ns(&self, bit_rate_bps: u64, rng: &mut SmallRng) -> u64 {
        let mean = self.mean_interarrival_ns(bit_rate_bps);
        // Inverse-CDF exponential draw; clamp the uniform away from zero so
        // ln is finite.
        let u: f64 = rng.random::<f64>().max(1e-12);
        (-mean * u.ln()).round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_sizes_are_fixed() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(FrameSizes::Fixed(512).sample(&mut r), 512);
        }
    }

    #[test]
    fn uniform_sizes_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let s = FrameSizes::Uniform(64, 1500).sample(&mut r);
            assert!((64..=1500).contains(&s));
        }
    }

    #[test]
    fn bimodal_mean_matches_mixture() {
        let d = FrameSizes::Bimodal {
            small: 64,
            large: 1500,
            p_small: 0.75,
        };
        assert!((d.mean_bytes() - (0.75 * 64.0 + 0.25 * 1500.0)).abs() < 1e-9);
    }

    #[test]
    fn bimodal_sampling_tracks_probability() {
        let mut r = rng();
        let d = FrameSizes::Bimodal {
            small: 64,
            large: 1500,
            p_small: 0.8,
        };
        let smalls = (0..10_000).filter(|_| d.sample(&mut r) == 64).count();
        let fraction = smalls as f64 / 10_000.0;
        assert!((fraction - 0.8).abs() < 0.02, "got {fraction}");
    }

    #[test]
    fn interarrival_mean_matches_offered_load() {
        // 10 stations at aggregate load 0.5 of 10 Mb/s with 1000-bit frames:
        // per-station rate = 500 kb/s = 500 frames/s → mean gap 2 ms.
        let w = Workload {
            stations: 10,
            offered_load: 0.5,
            frame_sizes: FrameSizes::Fixed(125),
        };
        let mean = w.mean_interarrival_ns(10_000_000);
        assert!((mean - 2e6).abs() < 1.0, "got {mean}");
    }

    #[test]
    fn sampled_interarrivals_average_near_the_mean() {
        let mut r = rng();
        let w = Workload {
            stations: 4,
            offered_load: 0.4,
            frame_sizes: FrameSizes::Fixed(1000),
        };
        let mean = w.mean_interarrival_ns(10_000_000);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| w.sample_interarrival_ns(10_000_000, &mut r))
            .sum();
        let empirical = total as f64 / n as f64;
        assert!(
            (empirical - mean).abs() / mean < 0.05,
            "empirical {empirical} vs mean {mean}"
        );
    }
}
