/root/repo/target/debug/deps/ethernet-0f5a477e8ba9fa27.d: crates/bench/benches/ethernet.rs

/root/repo/target/debug/deps/ethernet-0f5a477e8ba9fa27: crates/bench/benches/ethernet.rs

crates/bench/benches/ethernet.rs:
