//! E10: node failure, checksites and reincarnation across crates.
//!
//! §4.4 end-to-end on the full stack: kill node machines and watch
//! checkpointed objects come back at their checksites while
//! uncheckpointed active state is lost, "exactly per the paper".

use std::time::Duration;

use eden::apps::with_apps;
use eden::capability::{NodeId, Rights};
use eden::efs::Efs;
use eden::kernel::{
    Cluster, EdenError, OpCtx, OpError, OpResult, ReliabilityLevel, TypeManager, TypeSpec,
};
use eden::obs::KernelEvent;
use eden::wire::{Status, Value};

fn cluster(n: usize) -> Cluster {
    with_apps(Cluster::builder().nodes(n)).build()
}

#[test]
fn efs_files_survive_the_death_of_every_client() {
    let c = cluster(4);
    let efs = Efs::format(c.node(3).clone()).unwrap();
    efs.write("/ledger", b"balance: 100").unwrap();

    // Kill every node except the one hosting the filesystem.
    c.kill(0);
    c.kill(1);
    // A fresh client on the last surviving non-host node still reads.
    let client = Efs::mount(c.node(2).clone(), efs.root());
    assert_eq!(&client.read("/ledger").unwrap()[..], b"balance: 100");
}

#[test]
fn the_filesystem_dies_with_an_unreplicated_host() {
    // Control experiment: checkpoints on the dead node are gone (its
    // store was volatile memory in this configuration).
    let c = cluster(3);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/doomed", b"gone").unwrap();
    c.kill(0);
    let client = Efs::mount(c.node(1).clone(), efs.root());
    let err = client.read("/doomed").unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("no-such-object") || msg.contains("timeout") || msg.contains("not found"),
        "unexpected: {msg}"
    );
}

#[test]
fn partition_heals_and_invocations_resume() {
    let c = cluster(3);
    let efs = Efs::format(c.node(2).clone()).unwrap();
    efs.write("/reachable", b"yes").unwrap();

    let client = Efs::mount(c.node(0).clone(), efs.root());
    assert_eq!(&client.read("/reachable").unwrap()[..], b"yes");

    // Partition the client from the host: reads fail...
    c.mesh().partition(c.node(0).node_id(), c.node(2).node_id());
    let err = client.read("/reachable");
    assert!(err.is_err(), "partitioned read must fail");

    // ... and resume after healing.
    c.mesh().heal(c.node(0).node_id(), c.node(2).node_id());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match client.read("/reachable") {
            Ok(data) => {
                assert_eq!(&data[..], b"yes");
                break;
            }
            Err(_) => {
                assert!(std::time::Instant::now() < deadline, "never healed");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[test]
fn lossy_network_is_survivable_for_idempotent_reads() {
    // 20% frame loss: timeouts and retries at the client layer still
    // converge for idempotent operations.
    use eden::transport::MeshOptions;
    let c = with_apps(Cluster::builder().nodes(2).mesh(MeshOptions {
        loss_probability: 0.2,
        seed: 7,
        ..Default::default()
    }))
    .build();
    let efs = Efs::format(c.node(1).clone()).unwrap();
    efs.write("/lossy", b"eventually").unwrap();
    let client = Efs::mount(c.node(0).clone(), efs.root());

    let mut successes = 0;
    for _ in 0..20 {
        if let Ok(data) = client.read("/lossy") {
            assert_eq!(&data[..], b"eventually");
            successes += 1;
        }
    }
    assert!(
        successes >= 10,
        "most reads should eventually succeed, got {successes}/20"
    );
}

/// A counter that checkpoints on every add and can place its checksite
/// (the E10 scenario type).
struct DurableCounter;

impl TypeManager for DurableCounter {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("test.durable")
            .class("all", 2)
            .op("add_ckpt", "all", Rights::WRITE)
            .op("get", "all", Rights::READ)
            .op("checksite", "all", Rights::OWNER)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "add_ckpt" => {
                let d = OpCtx::i64_arg(args, 0)?;
                let v = ctx.mutate_repr(|r| {
                    let v = r.get_i64("count").unwrap_or(0) + d;
                    r.put_i64("count", v);
                    v
                })?;
                ctx.checkpoint()?;
                Ok(vec![Value::I64(v)])
            }
            "get" => Ok(vec![Value::I64(
                ctx.read_repr(|r| r.get_i64("count").unwrap_or(0)),
            )]),
            "checksite" => {
                let node = OpCtx::u64_arg(args, 0)? as u16;
                ctx.set_checksite(NodeId(node), ReliabilityLevel::Local)?;
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

#[test]
fn flight_recorders_tell_the_failover_story_in_causal_order() {
    // The E10 kill-node scenario: an object executes on node 0 with its
    // checksite on node 1; node 0 dies; node 4 invokes. Afterwards the
    // cluster's flight recorders must narrate the failover — the dead
    // node's shutdown, the survivor's WhereIs broadcast, and the
    // checksite node's reincarnation — in causal (timestamp) order.
    let c = Cluster::builder()
        .nodes(5)
        .register(|| Box::new(DurableCounter))
        .build();
    let cap = c.node(0).create_object("test.durable", &[]).unwrap();
    c.node(0)
        .invoke(cap, "checksite", &[Value::U64(1)])
        .unwrap();
    c.node(0).invoke(cap, "add_ckpt", &[Value::I64(7)]).unwrap();

    c.kill(0);
    let out = c
        .node(4)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(15))
        .expect("failover get");
    assert_eq!(out, vec![Value::I64(7)]);

    let obj = cap.name().to_u128();
    let find = |node: usize, pred: &dyn Fn(&KernelEvent) -> bool| {
        c.node(node)
            .obs()
            .recorder()
            .events()
            .into_iter()
            .find(|e| pred(&e.event))
    };

    let shutdown = find(0, &|e| matches!(e, KernelEvent::NodeShutdown))
        .expect("killed node must record its shutdown");
    let checkpoint = find(
        0,
        &|e| matches!(e, KernelEvent::CheckpointWrite { obj: o, .. } if *o == obj),
    )
    .expect("node 0 must have recorded the checkpoint write");
    let broadcast = find(
        4,
        &|e| matches!(e, KernelEvent::WhereIsBroadcast { obj: o } if *o == obj),
    )
    .expect("the surviving invoker must record a WhereIs broadcast");
    let reincarnation = find(
        1,
        &|e| matches!(e, KernelEvent::Reincarnation { obj: o, .. } if *o == obj),
    )
    .expect("the checksite node must record the reincarnation");

    // All nodes share one monotonic clock, so cross-node timestamps are
    // directly comparable: checkpoint → death → search → rebirth.
    assert!(checkpoint.at_ns < shutdown.at_ns);
    assert!(shutdown.at_ns < broadcast.at_ns);
    assert!(broadcast.at_ns < reincarnation.at_ns);

    // The process-global flight-recorder sequence number tells the
    // same story without consulting the clock: merged streams from
    // different nodes interleave correctly on `seq` alone.
    assert!(checkpoint.seq < shutdown.seq);
    assert!(shutdown.seq < broadcast.seq);
    assert!(broadcast.seq < reincarnation.seq);
    let seqs: Vec<u64> = c
        .nodes()
        .iter()
        .flat_map(|n| n.obs().recorder().events())
        .map(|e| e.seq)
        .collect();
    let unique: std::collections::HashSet<u64> = seqs.iter().copied().collect();
    assert_eq!(
        unique.len(),
        seqs.len(),
        "sequence numbers are unique across every node's recorder"
    );

    // The dump is a readable postmortem.
    let dump = c.node(1).obs().recorder().dump(16);
    assert!(dump.contains("reincarnation"), "dump:\n{dump}");
    c.shutdown();
}

#[test]
fn timeouts_surface_when_the_holder_dies_mid_conversation() {
    let c = cluster(2);
    let efs = Efs::format(c.node(1).clone()).unwrap();
    efs.write("/vanishing", b"x").unwrap();
    let client = Efs::mount(c.node(0).clone(), efs.root());
    assert!(client.read("/vanishing").is_ok());

    c.kill(1);
    let err = client.read("/vanishing").unwrap_err();
    let kernel_err = match err {
        eden::efs::EfsError::Kernel(e) => e,
        other => panic!("expected kernel error, got {other:?}"),
    };
    assert!(
        matches!(
            kernel_err,
            EdenError::Invoke(Status::Timeout) | EdenError::Invoke(Status::NoSuchObject)
        ),
        "got {kernel_err:?}"
    );
}
