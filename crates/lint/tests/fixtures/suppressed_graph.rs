// Fixture: graph-rule suppressions (scanned as crates/core/src/graph.rs
// with a spec ranking graph.alpha before graph.beta). Unlike the
// line-rule allows in suppressed.rs, these must carry a rationale.

struct S {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl S {
    fn inverted(&self) {
        let b = self.beta.lock();
        // eden-lint: allow(lock-order): startup-only path, runs single-
        // threaded before the pool exists
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }

    fn dispatch(&self) {
        self.pool.submit(move || {
            // eden-lint: allow(blocking-discipline): bounded 1ms backoff in
            // the drain loop, measured harmless under the stall watchdog
            std::thread::sleep(Duration::from_millis(1));
        });
    }
}
