//! Client-side invocation pipelining.
//!
//! [`Node::invoke`] is one-RTT-per-call: each remote invocation sends a
//! request and blocks until its reply returns. A [`PipelinedClient`]
//! keeps **many invocations in flight on one connection**: [`call`]
//! sends a request and returns immediately with a [`PendingCall`];
//! [`wait`] harvests the reply later, in any order across outstanding
//! calls, because replies rendezvous by invocation id.
//!
//! The at-most-once contract is unchanged. Every call carries a fresh
//! `inv_id`; the serving kernel's dedup-and-replay bookkeeping treats a
//! pipelined burst exactly like a sequence of individual invocations,
//! and an unanswered call retransmits its request (same id) on the
//! node's configured interval during [`wait`].
//!
//! ```text
//! sequential:  req1 ──► rep1 ──► req2 ──► rep2 ──► req3 ──► rep3
//! pipelined:   req1 req2 req3 ──► rep2 rep1 rep3      (3 calls, ~1 RTT)
//! ```
//!
//! [`call`]: PipelinedClient::call
//! [`wait`]: PendingCall::wait

use std::time::Duration;

use eden_capability::{Capability, NodeId};
use eden_wire::{Status, Value};
use parking_lot::Mutex;

use crate::node::{Node, PipelineTicket};

impl Node {
    /// Creates a pipelined client for `cap`, aimed at this node's best
    /// current guess of the holder (forwarding address → hint cache →
    /// birth node). The aim self-corrects: each completed call re-aims
    /// the client at the node that actually answered.
    pub fn pipelined_client(&self, cap: Capability) -> PipelinedClient {
        let dst = self.pipeline_default_dst(cap.name());
        self.pipelined_client_to(cap, dst)
    }

    /// [`pipelined_client`](Self::pipelined_client) with an explicit
    /// initial destination.
    pub fn pipelined_client_to(&self, cap: Capability, dst: NodeId) -> PipelinedClient {
        PipelinedClient {
            node: self.clone(),
            cap,
            dst: Mutex::new(dst),
        }
    }
}

/// Issues invocations of one object without waiting for each reply —
/// the connection carries a window of outstanding requests instead of
/// one. Create with [`Node::pipelined_client`]; the window size is
/// whatever the caller keeps un-harvested (backpressure still applies:
/// the serving kernel sheds past its queue caps with
/// [`Status::Overloaded`]).
pub struct PipelinedClient {
    node: Node,
    cap: Capability,
    /// Current destination; re-aimed at whichever node answered last,
    /// so a forwarding chain after a move is paid once.
    dst: Mutex<NodeId>,
}

impl PipelinedClient {
    /// The capability this client invokes.
    pub fn capability(&self) -> Capability {
        self.cap
    }

    /// Where requests are currently being sent.
    pub fn dst(&self) -> NodeId {
        *self.dst.lock()
    }

    /// Sends one invocation request and returns without waiting. The
    /// reply is harvested with [`PendingCall::wait`] — in any order
    /// relative to other outstanding calls. Fails only when the
    /// transport refuses the frame outright.
    pub fn call(&self, op: &str, args: &[Value]) -> Result<PendingCall<'_>, Status> {
        let ticket = self
            .node
            .pipeline_send(self.dst(), self.cap, op, args)?;
        Ok(PendingCall {
            client: self,
            ticket: Some(ticket),
            op: op.to_string(),
            args: args.to_vec(),
        })
    }

    /// Convenience: `call` + `wait` with the node's default timeout —
    /// one-RTT-per-call, exactly the baseline the pipelined path is
    /// measured against in experiment E16.
    pub fn call_sync(&self, op: &str, args: &[Value]) -> (Status, Vec<Value>) {
        match self.call(op, args) {
            Ok(pending) => pending.wait_default(),
            Err(status) => (status, Vec::new()),
        }
    }
}

/// One in-flight pipelined invocation. Dropping it un-harvested
/// releases the reply waiter (the reply, if it arrives, is discarded).
pub struct PendingCall<'a> {
    client: &'a PipelinedClient,
    ticket: Option<PipelineTicket>,
    op: String,
    args: Vec<Value>,
}

impl PendingCall<'_> {
    /// The invocation id this call is riding (its at-most-once key on
    /// the serving kernel, scoped to this node's id).
    pub fn inv_id(&self) -> u64 {
        self.ticket.as_ref().expect("ticket present until wait").inv_id
    }

    /// Waits for the reply, retransmitting the request (same `inv_id`;
    /// the server dedupes) on the node's configured interval. On an
    /// answer the client re-aims at the node that replied.
    pub fn wait(mut self, budget: Duration) -> (Status, Vec<Value>) {
        let ticket = self.ticket.take().expect("wait consumes the ticket");
        let (status, results, from) = self.client.node.pipeline_wait(
            &ticket,
            self.client.cap,
            &self.op,
            &self.args,
            budget,
        );
        if !matches!(status, Status::NoSuchObject | Status::Timeout) {
            *self.client.dst.lock() = from;
        }
        (status, results)
    }

    /// [`wait`](Self::wait) with the node's default invocation timeout.
    pub fn wait_default(self) -> (Status, Vec<Value>) {
        let budget = self.client.node.pipeline_default_budget();
        self.wait(budget)
    }
}

impl Drop for PendingCall<'_> {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket.take() {
            self.client.node.pipeline_abandon(ticket.inv_id);
        }
    }
}
