//! Ethernet channel parameters.

use crate::time::us;

/// Physical and MAC parameters of the simulated channel.
///
/// Defaults are the DIX Ethernet the Eden paper cites ([Ethernet 1980]):
/// 10 Mb/s, a 51.2 µs slot (512 bit times), a 9.6 µs interframe gap,
/// a 32-bit jam, backoff capped at 2^10 slots and 16 attempts.
/// [`EthernetConfig::experimental`] gives the 2.94 Mb/s Experimental
/// Ethernet of the Almes & Lazowska measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetConfig {
    /// Channel bit rate in bits per second.
    pub bit_rate_bps: u64,
    /// One-way end-to-end propagation delay, nanoseconds.
    pub prop_delay_ns: u64,
    /// Contention slot, nanoseconds (canonically two propagation times
    /// plus margin; 51.2 µs on 10 Mb/s Ethernet).
    pub slot_ns: u64,
    /// Interframe gap, nanoseconds.
    pub ifg_ns: u64,
    /// Jam signal duration after collision detection, nanoseconds.
    pub jam_ns: u64,
    /// Truncated-binary-exponential-backoff exponent cap.
    pub max_backoff_exp: u32,
    /// Attempts before a frame is dropped as undeliverable.
    pub max_attempts: u32,
    /// Per-station transmit queue capacity (arrivals beyond it are
    /// dropped and counted).
    pub queue_capacity: usize,
}

impl EthernetConfig {
    /// The DIX 10 Mb/s Ethernet.
    pub fn dix() -> Self {
        EthernetConfig {
            bit_rate_bps: 10_000_000,
            prop_delay_ns: us(10),
            slot_ns: 51_200,
            ifg_ns: 9_600,
            jam_ns: 3_200,
            max_backoff_exp: 10,
            max_attempts: 16,
            queue_capacity: 64,
        }
    }

    /// The 2.94 Mb/s Experimental Ethernet measured by Almes & Lazowska.
    pub fn experimental() -> Self {
        EthernetConfig {
            bit_rate_bps: 2_940_000,
            prop_delay_ns: us(8),
            // Slot scales with the slower bit rate (512 bit times).
            slot_ns: 174_000,
            ifg_ns: 32_600,
            jam_ns: 10_900,
            max_backoff_exp: 10,
            max_attempts: 16,
            queue_capacity: 64,
        }
    }

    /// Channel capacity in bits per simulated second (identity helper for
    /// readable load math).
    pub fn capacity_bps(&self) -> f64 {
        self.bit_rate_bps as f64
    }
}

impl Default for EthernetConfig {
    fn default() -> Self {
        EthernetConfig::dix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dix_defaults_match_the_spec() {
        let c = EthernetConfig::dix();
        assert_eq!(c.bit_rate_bps, 10_000_000);
        assert_eq!(c.slot_ns, 51_200);
        assert_eq!(c.ifg_ns, 9_600);
        assert_eq!(c.max_attempts, 16);
    }

    #[test]
    fn experimental_is_slower() {
        assert!(EthernetConfig::experimental().bit_rate_bps < EthernetConfig::dix().bit_rate_bps);
    }
}
