#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, and the root test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test -q
