// Fixture: L3 wire-exhaustiveness violations (scanned as
// crates/wire/src/status.rs): wildcard arms in matches over Status
// variants and over TAG_ decode constants.

fn retryable(status: &Status) -> bool {
    match status {
        Status::Timeout | Status::Overloaded => true,
        _ => false,
    }
}

fn decode(tag: u8) -> Option<Status> {
    match tag {
        TAG_OK => Some(Status::Ok),
        TAG_TIMEOUT => Some(Status::Timeout),
        _ => None,
    }
}
