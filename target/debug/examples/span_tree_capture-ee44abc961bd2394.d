/root/repo/target/debug/examples/span_tree_capture-ee44abc961bd2394.d: examples/span_tree_capture.rs

/root/repo/target/debug/examples/span_tree_capture-ee44abc961bd2394: examples/span_tree_capture.rs

examples/span_tree_capture.rs:
