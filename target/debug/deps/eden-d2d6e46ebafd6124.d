/root/repo/target/debug/deps/eden-d2d6e46ebafd6124.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libeden-d2d6e46ebafd6124.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
