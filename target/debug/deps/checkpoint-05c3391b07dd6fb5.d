/root/repo/target/debug/deps/checkpoint-05c3391b07dd6fb5.d: crates/bench/benches/checkpoint.rs

/root/repo/target/debug/deps/checkpoint-05c3391b07dd6fb5: crates/bench/benches/checkpoint.rs

crates/bench/benches/checkpoint.rs:
