//! L6 `lock-order`: the "lock A held while acquiring lock B" graph
//! across eden-kernel, eden-transport and eden-directory must agree
//! with the sanctioned total order in `lint-lock-order.toml`.
//!
//! Edges come from two sources: two acquisitions whose lexical hold
//! spans nest inside one function, and a call made while a guard is
//! held to a function that (transitively, same crate) acquires more
//! locks. Violations are reentrant edges (`A → A`), inversions of the
//! declared order, and edges touching a lock the order file does not
//! rank. `[[allow]]` entries in the TOML and
//! `// eden-lint: allow(lock-order): <rationale>` comments exempt an
//! edge; the rationale is mandatory.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::model::Workspace;
use crate::{Finding, LockOrderSpec, Rule};

/// Crates whose lock graphs the rule gates.
const SCOPE: [&str; 3] = ["core", "transport", "directory"];

/// One "held while acquiring" edge, for findings and the DOT artifact.
#[derive(Debug, Clone)]
pub(crate) struct LockEdge {
    pub(crate) from: String,
    pub(crate) to: String,
    pub(crate) file: String,
    pub(crate) line: usize,
    /// The callee the acquisition was reached through, if indirect.
    pub(crate) via: Option<String>,
}

pub(crate) fn check(ws: &Workspace, spec: &LockOrderSpec, out: &mut Vec<Finding>) -> Vec<LockEdge> {
    let edges = collect_edges(ws);
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for e in &edges {
        if !seen.insert((e.from.clone(), e.to.clone())) {
            continue; // one finding per distinct edge, at its first site
        }
        let via = e
            .via
            .as_ref()
            .map(|v| format!(" (via call to `{v}`)"))
            .unwrap_or_default();
        if e.from == e.to {
            out.push(finding(
                e,
                format!(
                    "reentrant acquisition: `{}` is acquired while already held{via}; \
                     the sync shim's mutexes are not reentrant, this deadlocks",
                    e.from
                ),
            ));
            continue;
        }
        if spec.allows(&e.from, &e.to) {
            continue;
        }
        match (spec.index(&e.from), spec.index(&e.to)) {
            (Some(a), Some(b)) if a < b => {}
            (Some(_), Some(_)) => out.push(finding(
                e,
                format!(
                    "lock-order inversion: `{}` acquired while `{}` is held{via}, but \
                     lint-lock-order.toml ranks `{1}` before `{0}`",
                    e.to, e.from
                ),
            )),
            _ => {
                let missing: Vec<&str> = [&e.from, &e.to]
                    .into_iter()
                    .filter(|id| spec.index(id).is_none())
                    .map(String::as_str)
                    .collect();
                out.push(finding(
                    e,
                    format!(
                        "nested acquisition `{}` → `{}`{via} involves lock(s) not ranked \
                         in lint-lock-order.toml ({}); add them to the sanctioned order",
                        e.from,
                        e.to,
                        missing.join(", ")
                    ),
                ));
            }
        }
    }
    edges
}

fn finding(e: &LockEdge, message: String) -> Finding {
    Finding {
        rule: Rule::LockOrder,
        file: e.file.clone(),
        line: e.line,
        message,
        suppressed: false,
    }
}

/// Builds the full edge list: intra-function hold-span nesting plus
/// calls made under a guard into functions that may acquire (computed
/// as a same-crate transitive fixpoint).
fn collect_edges(ws: &Workspace) -> Vec<LockEdge> {
    // may_acquire: (crate, fn name) → lock ids it can take, transitively.
    let mut acq: HashMap<(String, String), BTreeSet<String>> = HashMap::new();
    for file in scoped(ws) {
        for f in &file.fns {
            let entry = acq
                .entry((file.crate_key.clone(), f.name.clone()))
                .or_default();
            for l in &f.locks {
                entry.insert(ws.lock_id(file, &l.field));
            }
        }
    }
    loop {
        let mut changed = false;
        for file in scoped(ws) {
            for f in &file.fns {
                let mut add = BTreeSet::new();
                for c in &f.calls {
                    if c.in_submit || c.in_spawn {
                        continue; // deferred to a pool worker or fresh
                                  // thread, not taken on this stack
                    }
                    if let Some(set) = acq.get(&(file.crate_key.clone(), c.callee.clone())) {
                        add.extend(set.iter().cloned());
                    }
                }
                let entry = acq
                    .entry((file.crate_key.clone(), f.name.clone()))
                    .or_default();
                for id in add {
                    changed |= entry.insert(id);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut edges = Vec::new();
    for file in scoped(ws) {
        for f in &file.fns {
            for a in &f.locks {
                let from = ws.lock_id(file, &a.field);
                for b in &f.locks {
                    if b.at > a.at && b.at < a.hold_end {
                        edges.push(LockEdge {
                            from: from.clone(),
                            to: ws.lock_id(file, &b.field),
                            file: file.rel_path.clone(),
                            line: file.model.line_of(b.at),
                            via: None,
                        });
                    }
                }
                for c in &f.calls {
                    if c.in_submit || c.in_spawn || c.at <= a.at || c.at >= a.hold_end {
                        continue; // submit/spawn closures run later, off this stack
                    }
                    let Some(set) = acq.get(&(file.crate_key.clone(), c.callee.clone())) else {
                        continue;
                    };
                    for to in set {
                        edges.push(LockEdge {
                            from: from.clone(),
                            to: to.clone(),
                            file: file.rel_path.clone(),
                            line: file.model.line_of(c.at),
                            via: Some(c.callee.clone()),
                        });
                    }
                }
            }
        }
    }
    edges.sort_by(|a, b| (&a.file, a.line, &a.from, &a.to).cmp(&(&b.file, b.line, &b.from, &b.to)));
    edges
}

fn scoped(ws: &Workspace) -> impl Iterator<Item = &crate::model::FileModel> {
    ws.files
        .iter()
        .filter(|f| SCOPE.contains(&f.crate_key.as_str()))
}

/// Renders the lock graph as DOT. `exempt` holds `(from, to)` pairs
/// sanctioned by `[[allow]]` or by a rationale-carrying suppression;
/// they render dashed and are excluded from the acyclicity verdict in
/// the `// acyclic-modulo-allowed:` header CI greps for.
pub(crate) fn to_dot(
    edges: &[LockEdge],
    spec: &LockOrderSpec,
    exempt: &HashSet<(String, String)>,
) -> String {
    // Dedup to one rendered edge per (from, to); prefer a direct site.
    let mut uniq: BTreeMap<(String, String), &LockEdge> = BTreeMap::new();
    for e in edges {
        uniq.entry((e.from.clone(), e.to.clone()))
            .and_modify(|cur| {
                if cur.via.is_some() && e.via.is_none() {
                    *cur = e;
                }
            })
            .or_insert(e);
    }
    let is_exempt = |from: &str, to: &str| {
        spec.allows(from, to) || exempt.contains(&(from.to_string(), to.to_string()))
    };

    // Cycle check over the strict (non-exempt) edges, self-loops included.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in uniq.keys() {
        if !is_exempt(from, to) {
            adj.entry(from).or_default().push(to);
        }
    }
    let acyclic = !has_cycle(&adj);

    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in uniq.keys() {
        nodes.insert(from);
        nodes.insert(to);
    }
    let mut dot = String::new();
    dot.push_str(
        "// eden-lint lock-order graph: \"A -> B\" means lock A is held while acquiring B.\n",
    );
    dot.push_str("// Dashed edges are sanctioned by lint-lock-order.toml [[allow]] or a\n");
    dot.push_str(
        "// rationale-carrying allow(lock-order) comment; CI requires the rest acyclic.\n",
    );
    dot.push_str(&format!("// acyclic-modulo-allowed: {acyclic}\n"));
    dot.push_str("digraph lock_order {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    for n in &nodes {
        dot.push_str(&format!("  \"{n}\";\n"));
    }
    for ((from, to), e) in &uniq {
        let mut attrs = vec![format!("label=\"{}:{}\"", e.file, e.line)];
        if let Some(via) = &e.via {
            attrs.push(format!("taillabel=\"via {via}\""));
        }
        if is_exempt(from, to) {
            attrs.push("style=dashed".to_string());
            attrs.push("color=gray".to_string());
        }
        dot.push_str(&format!(
            "  \"{from}\" -> \"{to}\" [{}];\n",
            attrs.join(", ")
        ));
    }
    dot.push_str("}\n");
    dot
}

fn has_cycle(adj: &BTreeMap<&str, Vec<&str>>) -> bool {
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state: HashMap<&str, u8> = HashMap::new();
    fn visit<'a>(
        n: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        state: &mut HashMap<&'a str, u8>,
    ) -> bool {
        match state.get(n) {
            Some(1) => return true,
            Some(2) => return false,
            _ => {}
        }
        state.insert(n, 1);
        for next in adj.get(n).into_iter().flatten() {
            if visit(next, adj, state) {
                return true;
            }
        }
        state.insert(n, 2);
        false
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    nodes.into_iter().any(|n| visit(n, adj, &mut state))
}
