//! E5 — object mobility (§4.3): move cost vs. size, and the locality
//! payoff of co-locating chatty objects.
//!
//! Expected shape: move time grows with the representation
//! (serialization + transfer); after co-location, a chatty exchange
//! loses its per-message network cost entirely.

use std::time::{Duration, Instant};

use eden_transport::{LatencyModel, MeshOptions};
use eden_wire::Value;

use crate::fmt_us;
use crate::table::Table;
use crate::types::{with_bench_types, EchoType, PayloadType};

/// Time (µs) to move a `bytes`-sized object node 0 → node 1, measured
/// from the move request to the object answering on the destination.
///
/// Runs over the LAN-shaped mesh: the in-process zero-latency mesh
/// passes reference-counted buffers, so only a wire model makes the
/// size-dependent transfer cost visible.
pub fn move_us(bytes: usize) -> f64 {
    let cluster = with_bench_types(eden_apps::with_apps(
        eden_kernel::Cluster::builder().nodes(2).mesh(MeshOptions {
            latency: LatencyModel::lan_10mbps(),
            loss_probability: 0.0,
            seed: 55,
        }),
    ))
    .build();
    let node = cluster.node(0);
    let cap = node
        .create_object(PayloadType::NAME, &[])
        .expect("create payload");
    node.invoke(cap, "fill", &[Value::U64(bytes as u64)])
        .expect("fill");

    let start = Instant::now();
    node.invoke(cap, "migrate", &[Value::U64(1)])
        .expect("migrate");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cluster.node(1).is_local(cap.name()) {
        assert!(Instant::now() < deadline, "move never completed");
        std::thread::yield_now();
    }
    let us = start.elapsed().as_secs_f64() * 1e6;
    cluster.shutdown();
    us
}

/// Runs E5 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E5 — object mobility: move cost and locality payoff",
        &["measurement", "value"],
    );
    for bytes in [1usize << 10, 16 << 10, 256 << 10, 1 << 20] {
        t.row(vec![
            format!("move {} KiB object (0→1)", bytes >> 10),
            fmt_us(move_us(bytes)),
        ]);
    }

    // The chatty-pair payoff, on a LAN-shaped mesh.
    let cluster = with_bench_types(eden_apps::with_apps(
        eden_kernel::Cluster::builder().nodes(2).mesh(MeshOptions {
            latency: LatencyModel::lan_10mbps(),
            loss_probability: 0.0,
            seed: 5,
        }),
    ))
    .build();
    let echo = cluster
        .node(1)
        .create_object(EchoType::NAME, &[])
        .expect("create echo");
    let chat = |label: &str, t: &mut Table| {
        const MSGS: usize = 50;
        let start = Instant::now();
        for i in 0..MSGS {
            cluster
                .node(0)
                .invoke(echo, "echo", &[Value::U64(i as u64)])
                .expect("chat");
        }
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        t.row(vec![
            format!("50-message exchange, {label}"),
            format!("{total_ms:.2} ms"),
        ]);
    };
    chat("cross-node (LAN)", &mut t);
    cluster
        .node(1)
        .move_object(echo, cluster.node(0).node_id())
        .expect("move");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cluster.node(0).is_local(echo.name()) {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(2));
    }
    chat("co-located after move", &mut t);

    t.note(
        "expected shape: move cost grows with size; co-location removes the per-message LAN cost",
    );
    cluster.shutdown();
    t
}
