//! E10 — reliability: node failure and reincarnation at the checksite.
//!
//! The full §4.4 story with a stopwatch: an object executing on node 0
//! keeps its long-term state on node 1; node 0 is killed; the next
//! invocation finds the passive copy and reincarnates it. Expected
//! shape: recovery = location search + reincarnation, far below any
//! human-visible outage; state is exactly the last checkpoint.

use std::time::{Duration, Instant};

use eden_capability::{Capability, NodeId, Rights};
use eden_kernel::{Cluster, OpCtx, OpError, OpResult, ReliabilityLevel, TypeManager, TypeSpec};
use eden_wire::Value;

use crate::table::Table;
use crate::types::with_bench_types;

/// A counter that can place its checksite (bench-local twin of the
/// kernel-test type).
struct DurableCounter;

impl TypeManager for DurableCounter {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("bench.durable")
            .class("all", 2)
            .op("add_ckpt", "all", Rights::WRITE)
            .op("get", "all", Rights::READ)
            .op("checksite", "all", Rights::OWNER)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "add_ckpt" => {
                let d = OpCtx::i64_arg(args, 0)?;
                let v = ctx.mutate_repr(|r| {
                    let v = r.get_i64("count").unwrap_or(0) + d;
                    r.put_i64("count", v);
                    v
                })?;
                ctx.checkpoint()?;
                Ok(vec![Value::I64(v)])
            }
            "get" => Ok(vec![Value::I64(
                ctx.read_repr(|r| r.get_i64("count").unwrap_or(0)),
            )]),
            "checksite" => {
                let node = OpCtx::u64_arg(args, 0)? as u16;
                let replicas = args.get(1).and_then(Value::as_u64).unwrap_or(0) as usize;
                let level = if replicas == 0 {
                    ReliabilityLevel::Local
                } else {
                    ReliabilityLevel::Replicated(replicas)
                };
                ctx.set_checksite(NodeId(node), level)?;
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

fn failover_cluster() -> Cluster {
    with_bench_types(eden_apps::with_apps(
        Cluster::builder()
            .nodes(5)
            .register(|| Box::new(DurableCounter)),
    ))
    .build()
}

/// One failover run: returns (recovery µs, recovered value).
pub fn failover_run(replicas: usize, kill_checksite_too: bool) -> (f64, i64) {
    let cluster = failover_cluster();
    let cap: Capability = cluster
        .node(0)
        .create_object("bench.durable", &[])
        .expect("create");
    cluster
        .node(0)
        .invoke(
            cap,
            "checksite",
            &[Value::U64(1), Value::U64(replicas as u64)],
        )
        .expect("checksite");
    cluster
        .node(0)
        .invoke(cap, "add_ckpt", &[Value::I64(7)])
        .expect("checkpointing add");

    cluster.kill(0);
    if kill_checksite_too {
        cluster.kill(1);
    }

    // Invoke from node 4, which never received a checkpoint replica, so
    // recovery genuinely exercises the location search.
    let start = Instant::now();
    let out = cluster
        .node(4)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(15))
        .expect("failover get");
    let us = start.elapsed().as_secs_f64() * 1e6;
    let value = out[0].as_i64().expect("i64");
    cluster.shutdown();
    (us, value)
}

/// Runs E10 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E10 — node failure → reincarnation at the checksite",
        &["scenario", "recovery time", "recovered value (expected 7)"],
    );
    let (us, v) = failover_run(0, false);
    t.row(vec![
        "kill executing node; checksite survives".into(),
        crate::fmt_us(us),
        v.to_string(),
    ]);
    let (us, v) = failover_run(2, true);
    t.row(vec![
        "kill executing node AND checksite; 2 replicas".into(),
        crate::fmt_us(us),
        v.to_string(),
    ]);
    t.note("expected shape: recovery ≈ failed-candidate timeout + broadcast + reincarnation; state = last checkpoint");
    t
}
