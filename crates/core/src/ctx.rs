//! The operation context: what a type manager sees from inside an object.
//!
//! §4.1: "When viewed from the inside … an object may have more
//! sophistication and complexity. The designer of the object … will wish
//! to achieve desired goals of reliability, performance, and fault
//! tolerance." [`OpCtx`] is the inside view — the §2 "Eden type
//! programmer" interface: representation access, nested invocation,
//! object creation, the checkpoint / checksite / crash primitives (§4.4),
//! freeze and move (§4.3), and the intra-object concurrency facilities
//! (§4.2).

use std::sync::Arc;

use eden_capability::{Capability, NodeId, ObjName, Rights};
use eden_wire::Value;

use crate::behavior::{spawn_behavior, BehaviorCtx};
use crate::error::{EdenError, Result};
use crate::node::Node;
use crate::object::{ObjectSlot, ReliabilityLevel};
use crate::repr::Representation;
use crate::sync::{EdenSemaphore, MessagePort};
use crate::types::OpError;

/// The inside view of one executing invocation (or initialization or
/// reincarnation handler) of one object.
pub struct OpCtx<'a> {
    pub(crate) node: &'a Node,
    pub(crate) slot: &'a Arc<ObjectSlot>,
    /// The capability the invoker presented.
    pub(crate) presented: Capability,
    /// The node the invocation came from.
    pub(crate) caller: NodeId,
    /// The operation being executed (empty for initialize/reincarnate).
    pub(crate) op: String,
}

impl<'a> OpCtx<'a> {
    pub(crate) fn new(
        node: &'a Node,
        slot: &'a Arc<ObjectSlot>,
        presented: Capability,
        caller: NodeId,
        op: impl Into<String>,
    ) -> Self {
        OpCtx {
            node,
            slot,
            presented,
            caller,
            op: op.into(),
        }
    }

    /// This object's unique name.
    pub fn name(&self) -> ObjName {
        self.slot.name
    }

    /// A full-rights capability for this object (an object trusts
    /// itself; restrict before handing out).
    pub fn self_cap(&self) -> Capability {
        Capability::mint(self.slot.name)
    }

    /// The node currently executing this object.
    pub fn node_id(&self) -> NodeId {
        self.node.node_id()
    }

    /// The kernel executing this object (policy objects consult it for
    /// peers and kernel-level moves).
    pub fn node(&self) -> &Node {
        self.node
    }

    /// The node the invocation arrived from.
    pub fn caller(&self) -> NodeId {
        self.caller
    }

    /// The rights carried by the presented capability (already checked
    /// against the operation's requirement; inspect for finer grading).
    pub fn presented_rights(&self) -> Rights {
        self.presented.rights()
    }

    /// The operation name being executed.
    pub fn op(&self) -> &str {
        &self.op
    }

    /// Whether this object's representation is frozen.
    pub fn is_frozen(&self) -> bool {
        self.slot.is_frozen()
    }

    /// Whether this execution runs against a cached frozen replica
    /// rather than the object's home instance.
    pub fn is_replica(&self) -> bool {
        self.slot.is_replica()
    }

    // ----- Representation access -----

    /// Reads the representation under the shared lock.
    pub fn read_repr<R>(&self, f: impl FnOnce(&Representation) -> R) -> R {
        f(&self.slot.repr.read())
    }

    /// Mutates the representation under the exclusive lock.
    ///
    /// Fails with [`OpError::Frozen`] once the object is frozen (§4.3:
    /// "When an object is frozen its representation is made immutable").
    pub fn mutate_repr<R>(
        &self,
        f: impl FnOnce(&mut Representation) -> R,
    ) -> std::result::Result<R, OpError> {
        if self.slot.is_frozen() {
            return Err(OpError::Frozen);
        }
        Ok(f(&mut self.slot.repr.write()))
    }

    // ----- Invocation and creation -----

    /// Invokes an operation on another object, location-independently.
    ///
    /// The calling invocation process blocks (its virtual processor is
    /// yielded while waiting, so nested invocation cannot starve the
    /// node).
    pub fn invoke(&self, cap: Capability, op: &str, args: &[Value]) -> Result<Vec<Value>> {
        self.node.invoke_nested(cap, op, args)
    }

    /// Creates a new object of `type_name` on this node, returning its
    /// full-rights capability.
    pub fn create_object(&self, type_name: &str, args: &[Value]) -> Result<Capability> {
        self.node.create_object(type_name, args)
    }

    // ----- Reliability primitives (§4.4) -----

    /// Records the representation on long-term storage at the checksite.
    ///
    /// "The type programmer must ensure that the object's representation
    /// is in a consistent state at the time the checkpoint is requested."
    /// Returns the durable version number.
    pub fn checkpoint(&self) -> Result<u64> {
        self.node.checkpoint_slot(self.slot)
    }

    /// Selects which node keeps this object's long-term state, and at
    /// what reliability level.
    pub fn set_checksite(&self, node: NodeId, level: ReliabilityLevel) -> Result<()> {
        self.node.set_checksite(self.slot, node, level)
    }

    /// Crashes this object: all active state is destroyed after the
    /// current invocations complete; if checkpointed, the object becomes
    /// passive and reincarnates on its next invocation. "An object may
    /// use crash to recover from its own internal failures, or as a form
    /// of exit operation to release system virtual memory resources."
    pub fn crash(&self) {
        self.node.request_crash(self.slot);
    }

    /// Destroys this object permanently: active state and checkpoints are
    /// discarded; the name is never reused.
    pub fn destroy(&self) {
        self.node.request_destroy(self.slot);
    }

    // ----- Location primitives (§4.3) -----

    /// Freezes the representation: it becomes immutable (and is
    /// checkpointed in frozen form) but remains invocable, and other
    /// kernels may cache replicas.
    pub fn freeze(&self) -> Result<u64> {
        self.node.freeze_slot(self.slot)
    }

    /// Requests that this object move to `dst`. The move is deferred
    /// until in-flight invocations (including the requesting one)
    /// complete; new invocations queue and follow the object.
    pub fn move_to(&self, dst: NodeId) -> Result<()> {
        self.node.request_move(self.slot, dst)
    }

    // ----- Intra-object concurrency (§4.2) -----

    /// The named intra-object semaphore (created with `initial` permits
    /// on first use).
    pub fn semaphore(&self, name: &str, initial: u64) -> Arc<EdenSemaphore> {
        self.slot.semaphore(name, initial)
    }

    /// The named intra-object message port (unbounded on first use).
    pub fn port(&self, name: &str) -> Arc<MessagePort> {
        self.slot.port(name)
    }

    /// Spawns a detached behavior process for this object. Typically
    /// called from [`TypeManager::reincarnate`](crate::TypeManager::reincarnate)
    /// or `initialize`.
    pub fn spawn_behavior(&self, label: &str, body: impl FnOnce(BehaviorCtx) + Send + 'static) {
        spawn_behavior(self.node.clone(), self.slot.clone(), label, body);
    }

    // ----- Short-term scratch data -----

    /// Reads a scratch (short-term, never checkpointed) value.
    pub fn scratch_get(&self, key: &str) -> Option<Value> {
        self.slot.short.scratch.lock().get(key).cloned()
    }

    /// Writes a scratch value.
    pub fn scratch_put(&self, key: &str, value: Value) {
        self.slot
            .short
            .scratch
            .lock()
            .insert(key.to_string(), value);
    }

    /// Removes a scratch value.
    pub fn scratch_remove(&self, key: &str) -> Option<Value> {
        self.slot.short.scratch.lock().remove(key)
    }

    /// A capability for an argument position, with a type error if absent.
    pub fn cap_arg(args: &[Value], index: usize) -> std::result::Result<Capability, OpError> {
        args.get(index)
            .and_then(Value::as_cap)
            .ok_or_else(|| OpError::type_error(format!("argument {index} must be a capability")))
    }

    /// A string argument accessor with a type error if absent.
    pub fn str_arg(args: &[Value], index: usize) -> std::result::Result<&str, OpError> {
        args.get(index)
            .and_then(Value::as_str)
            .ok_or_else(|| OpError::type_error(format!("argument {index} must be a string")))
    }

    /// An integer argument accessor with a type error if absent.
    pub fn i64_arg(args: &[Value], index: usize) -> std::result::Result<i64, OpError> {
        args.get(index)
            .and_then(Value::as_i64)
            .ok_or_else(|| OpError::type_error(format!("argument {index} must be an i64")))
    }

    /// An unsigned argument accessor with a type error if absent.
    pub fn u64_arg(args: &[Value], index: usize) -> std::result::Result<u64, OpError> {
        args.get(index)
            .and_then(Value::as_u64)
            .ok_or_else(|| OpError::type_error(format!("argument {index} must be a u64")))
    }

    /// Ensures the presented capability carries `required` beyond the
    /// operation's declared minimum (dynamic, data-dependent checks).
    pub fn require_rights(&self, required: Rights) -> std::result::Result<(), OpError> {
        if self.presented.permits(required) {
            Ok(())
        } else {
            Err(OpError::Kernel(EdenError::Invoke(
                eden_wire::Status::RightsViolation {
                    required,
                    held: self.presented.rights(),
                },
            )))
        }
    }
}
