/root/repo/target/debug/deps/apps-5e83b3659a6569eb.d: crates/apps/tests/apps.rs

/root/repo/target/debug/deps/apps-5e83b3659a6569eb: crates/apps/tests/apps.rs

crates/apps/tests/apps.rs:
