/root/repo/target/debug/examples/quickstart-cb59e91f3b4a734d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-cb59e91f3b4a734d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
