//! Transport counters.
//!
//! The frozen-object experiment (E4) measures its win as *remote messages
//! avoided*, so every transport counts frames and payload bytes in each
//! direction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time snapshot of one endpoint's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Frames passed to `send`.
    pub frames_sent: u64,
    /// Frames delivered to `recv`.
    pub frames_received: u64,
    /// Encoded payload bytes sent.
    pub bytes_sent: u64,
    /// Encoded payload bytes received.
    pub bytes_received: u64,
    /// Frames dropped: loss model, partition, dead peer, failed write,
    /// or shed at a full send queue.
    pub frames_dropped: u64,
    /// Of `frames_dropped`, frames shed because a per-peer send queue
    /// was full (TCP pipeline backpressure).
    pub frames_shed: u64,
    /// Coalesced write batches issued (TCP pipeline; one syscall each).
    pub batches_sent: u64,
    /// Background dial attempts (TCP pipeline).
    pub dials: u64,
    /// Of `dials`, attempts that failed and went into backoff.
    pub dial_failures: u64,
    /// Inbound connections dropped for protocol violations (oversized
    /// length prefix, undecodable frame). TCP transport only.
    pub inbound_dropped: u64,
    /// Frames sitting in per-peer send queues at snapshot time
    /// (instantaneous level, not a counter; zero for non-queueing
    /// transports).
    pub queue_depth: u64,
}

/// Shared mutable counters behind a snapshot API.
#[derive(Debug, Default)]
pub struct StatsCell {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_dropped: AtomicU64,
    frames_shed: AtomicU64,
    batches_sent: AtomicU64,
    dials: AtomicU64,
    dial_failures: AtomicU64,
    inbound_dropped: AtomicU64,
}

impl StatsCell {
    /// A fresh, shareable counter cell.
    pub fn new_shared() -> Arc<StatsCell> {
        Arc::new(StatsCell::default())
    }

    /// Records an outbound frame of `bytes` payload bytes.
    pub fn record_send(&self, bytes: usize) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records an inbound frame of `bytes` payload bytes.
    pub fn record_recv(&self, bytes: usize) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records a dropped frame.
    pub fn record_drop(&self) {
        self.frames_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` dropped frames at once (a failed coalesced write).
    pub fn record_drops(&self, n: u64) {
        self.frames_dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a frame shed at a full send queue (also counts as a drop).
    pub fn record_shed(&self) {
        self.frames_shed.fetch_add(1, Ordering::Relaxed);
        self.frames_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced write batch.
    pub fn record_batch(&self) {
        self.batches_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an inbound connection dropped for a protocol violation.
    pub fn record_inbound_drop(&self) {
        self.inbound_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dial attempt and whether it failed.
    pub fn record_dial(&self, failed: bool) {
        self.dials.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.dial_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes a snapshot. `queue_depth` is filled by queueing transports
    /// on top of this (it is a level, not a counter).
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            frames_shed: self.frames_shed.load(Ordering::Relaxed),
            batches_sent: self.batches_sent.load(Ordering::Relaxed),
            dials: self.dials.load(Ordering::Relaxed),
            dial_failures: self.dial_failures.load(Ordering::Relaxed),
            inbound_dropped: self.inbound_dropped.load(Ordering::Relaxed),
            queue_depth: 0,
        }
    }
}

impl TransportStats {
    /// The difference `self - earlier`, for measuring an interval.
    /// Counter fields subtract (saturating); `queue_depth` is a level
    /// and carries `self`'s value through unchanged.
    #[must_use]
    pub fn delta(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent.saturating_sub(earlier.frames_sent),
            frames_received: self.frames_received.saturating_sub(earlier.frames_received),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            frames_dropped: self.frames_dropped.saturating_sub(earlier.frames_dropped),
            frames_shed: self.frames_shed.saturating_sub(earlier.frames_shed),
            batches_sent: self.batches_sent.saturating_sub(earlier.batches_sent),
            dials: self.dials.saturating_sub(earlier.dials),
            dial_failures: self.dial_failures.saturating_sub(earlier.dial_failures),
            inbound_dropped: self.inbound_dropped.saturating_sub(earlier.inbound_dropped),
            queue_depth: self.queue_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = StatsCell::new_shared();
        c.record_send(100);
        c.record_send(50);
        c.record_recv(10);
        c.record_drop();
        let s = c.snapshot();
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.frames_received, 1);
        assert_eq!(s.bytes_received, 10);
        assert_eq!(s.frames_dropped, 1);
    }

    #[test]
    fn pipeline_counters_accumulate() {
        let c = StatsCell::new_shared();
        c.record_shed();
        c.record_batch();
        c.record_drops(3);
        c.record_dial(false);
        c.record_dial(true);
        let s = c.snapshot();
        assert_eq!(s.frames_shed, 1);
        assert_eq!(s.frames_dropped, 4); // 1 shed + 3 write-failure drops
        assert_eq!(s.batches_sent, 1);
        assert_eq!(s.dials, 2);
        assert_eq!(s.dial_failures, 1);
    }

    #[test]
    fn delta_measures_an_interval() {
        let c = StatsCell::new_shared();
        c.record_send(10);
        let before = c.snapshot();
        c.record_send(20);
        c.record_send(30);
        let after = c.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.frames_sent, 2);
        assert_eq!(d.bytes_sent, 50);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let c = StatsCell::new_shared();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.record_send(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().frames_sent, 4000);
    }
}
