/root/repo/target/debug/examples/mobile_calendar-7953f4a4e0a94bc2.d: examples/mobile_calendar.rs

/root/repo/target/debug/examples/mobile_calendar-7953f4a4e0a94bc2: examples/mobile_calendar.rs

examples/mobile_calendar.rs:
