//! L4 `panic-hygiene`: no panicking accessors on locks or channel ends
//! in kernel code.

use crate::lexer::{ident_before, open_paren_of, word_occurrences, SourceModel};
use crate::{Finding, Rule};

pub(crate) fn check(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    let scoped = [
        "crates/core/src",
        "crates/obs/src",
        "crates/wire/src",
        "crates/transport/src",
        "crates/directory/src",
    ];
    if !scoped.iter().any(|s| rel_path.starts_with(s)) {
        return;
    }
    const TARGETS: [&str; 10] = [
        "lock",
        "try_lock",
        "read",
        "write",
        "recv",
        "recv_timeout",
        "try_recv",
        "send",
        "try_send",
        "join",
    ];
    let code = &model.code;
    let mut sites: Vec<(usize, &'static str)> = Vec::new();
    for at in word_occurrences(code, "unwrap") {
        if code[at..].starts_with("unwrap()") {
            sites.push((at, ".unwrap()"));
        }
    }
    for at in word_occurrences(code, "expect") {
        if code.as_bytes().get(at + 6) == Some(&b'(') {
            sites.push((at, ".expect(…)"));
        }
    }
    for (at, what) in sites {
        // Require `.` immediately before, then a balanced call group,
        // then one of the lock/channel method names.
        let mut dot = at;
        while dot > 0 && code.as_bytes()[dot - 1].is_ascii_whitespace() {
            dot -= 1;
        }
        if dot == 0 || code.as_bytes()[dot - 1] != b'.' {
            continue;
        }
        let mut close = dot - 1;
        while close > 0 && code.as_bytes()[close - 1].is_ascii_whitespace() {
            close -= 1;
        }
        if close == 0 || code.as_bytes()[close - 1] != b')' {
            continue;
        }
        let Some(open) = open_paren_of(code, close - 1) else {
            continue;
        };
        let Some(method) = ident_before(code, open) else {
            continue;
        };
        if !TARGETS.contains(&method) {
            continue;
        }
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        out.push(Finding {
            rule: Rule::PanicHygiene,
            file: rel_path.to_string(),
            line,
            message: format!(
                "{what} on `.{method}(…)` in non-test kernel code; propagate the error or \
                 recover (e.g. `unwrap_or_else(|e| e.into_inner())` for poisoned locks)"
            ),
            suppressed: false,
        });
    }
}
