/root/repo/target/debug/examples/mobile_calendar-e92399174f5a4e0a.d: examples/mobile_calendar.rs Cargo.toml

/root/repo/target/debug/examples/libmobile_calendar-e92399174f5a4e0a.rmeta: examples/mobile_calendar.rs Cargo.toml

examples/mobile_calendar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
