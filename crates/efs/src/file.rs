//! EFS files: immutable version sequences, and frozen blob publications.
//!
//! A file's representation holds every retained version under
//! `ver:NNNNNNNN` segments. Writing never mutates a version — it appends
//! the next one and checkpoints, which is what makes EFS "transaction-
//! based, storing immutable versions" implementable with simple locking.
//!
//! Files are also two-phase-commit participants: the transaction manager
//! drives `lock` / `prepare` / `commit` / `abort` operations, with the
//! staged write held in *short-term* state (a kernel crash before commit
//! aborts the transaction naturally — staged data is never checkpointed).

use bytes::Bytes;
use eden_capability::Rights;
use eden_kernel::{OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// Segment name of version `v`.
fn ver_segment(v: u64) -> String {
    format!("ver:{v:08}")
}

/// The EFS file type manager.
///
/// Operations (class → limit):
///
/// | op | class | rights | effect |
/// |---|---|---|---|
/// | `read [version?]` | reads (8) | READ | bytes of a version (default latest) |
/// | `write [blob]` | writes (1) | WRITE | append version, checkpoint, return its number |
/// | `latest_version` | reads | READ | highest version number (0 = empty) |
/// | `history` | reads | READ | retained version numbers |
/// | `publish [version?]` | writes | READ | clone a version into a frozen blob object, return its capability |
/// | `lock [txid, exclusive]` | control (1) | WRITE | try-acquire; returns granted |
/// | `unlock [txid]` | control | WRITE | release |
/// | `prepare [txid, blob, expected?]` | control | WRITE | stage a write (optionally validating the base version) |
/// | `commit [txid]` | control | WRITE | staged write becomes a version |
/// | `abort [txid]` | control | WRITE | drop staged write, release locks |
pub struct FileType;

impl FileType {
    /// The registered type name.
    pub const NAME: &'static str = "efs.file";
}

/// Lock state keys in scratch.
const LOCK_OWNER: &str = "lock.exclusive";
/// Scratch key of the transaction currently prepared on this file.
const PREPARED_OWNER: &str = "prepared.owner";
const LOCK_SHARED: &str = "lock.shared";

fn shared_holders(ctx: &OpCtx<'_>) -> Vec<u64> {
    match ctx.scratch_get(LOCK_SHARED) {
        Some(Value::List(items)) => items.iter().filter_map(Value::as_u64).collect(),
        _ => Vec::new(),
    }
}

fn put_shared(ctx: &OpCtx<'_>, holders: &[u64]) {
    ctx.scratch_put(
        LOCK_SHARED,
        Value::List(holders.iter().map(|&t| Value::U64(t)).collect()),
    );
}

impl TypeManager for FileType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(FileType::NAME)
            .class("reads", 8)
            .class("writes", 1)
            // All transaction-control operations share one limit-1 class:
            // the coordinator's lock/prepare/commit steps on one file are
            // mutually exclusive, which is precisely §4.2's "by limiting
            // a class to one process, mutual exclusion is obtained".
            .class("control", 1)
            .op("read", "reads", Rights::READ)
            .op("latest_version", "reads", Rights::READ)
            .op("history", "reads", Rights::READ)
            .op("write", "writes", Rights::WRITE)
            .op("publish", "writes", Rights::READ)
            .op("lock", "control", Rights::WRITE)
            .op("unlock", "control", Rights::WRITE)
            .op("prepare", "control", Rights::WRITE)
            .op("commit", "control", Rights::WRITE)
            .op("abort", "control", Rights::WRITE)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        ctx.mutate_repr(|r| r.put_u64("latest", 0))?;
        if let Some(initial) = args.first().and_then(Value::as_blob) {
            let data = initial.clone();
            ctx.mutate_repr(|r| {
                r.put("ver:00000001", data);
                r.put_u64("latest", 1);
            })?;
        }
        ctx.checkpoint()?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "read" => {
                let version = args.first().and_then(Value::as_u64);
                let data = ctx.read_repr(|r| {
                    let v = version.unwrap_or_else(|| r.get_u64("latest").unwrap_or(0));
                    r.get(&ver_segment(v)).cloned()
                });
                match data {
                    Some(bytes) => Ok(vec![Value::Blob(bytes)]),
                    None => Err(OpError::app(404, "no such version")),
                }
            }
            "latest_version" => Ok(vec![Value::U64(
                ctx.read_repr(|r| r.get_u64("latest").unwrap_or(0)),
            )]),
            "history" => {
                let versions: Vec<Value> = ctx.read_repr(|r| {
                    r.segments_with_prefix("ver:")
                        .filter_map(|s| s[4..].parse::<u64>().ok())
                        .map(Value::U64)
                        .collect()
                });
                Ok(vec![Value::List(versions)])
            }
            "write" => {
                let data = args
                    .first()
                    .and_then(Value::as_blob)
                    .ok_or_else(|| OpError::type_error("write(blob)"))?
                    .clone();
                let v = append_version(ctx, data)?;
                Ok(vec![Value::U64(v)])
            }
            "publish" => {
                let version = args.first().and_then(Value::as_u64);
                let data = ctx.read_repr(|r| {
                    let v = version.unwrap_or_else(|| r.get_u64("latest").unwrap_or(0));
                    r.get(&ver_segment(v)).cloned()
                });
                let Some(bytes) = data else {
                    return Err(OpError::app(404, "no such version"));
                };
                let blob_cap = ctx.create_object(BlobType::NAME, &[Value::Blob(bytes)])?;
                Ok(vec![Value::Cap(blob_cap)])
            }
            "lock" => {
                let txid = OpCtx::u64_arg(args, 0)?;
                let exclusive = args.get(1).and_then(Value::as_bool).unwrap_or(true);
                let owner = ctx.scratch_get(LOCK_OWNER).and_then(|v| v.as_u64());
                let mut shared = shared_holders(ctx);
                let granted = if exclusive {
                    match owner {
                        Some(o) if o != txid => false,
                        _ => {
                            if shared.iter().any(|&t| t != txid) {
                                false // Other readers present.
                            } else {
                                ctx.scratch_put(LOCK_OWNER, Value::U64(txid));
                                true
                            }
                        }
                    }
                } else {
                    match owner {
                        Some(o) if o != txid => false,
                        _ => {
                            if !shared.contains(&txid) {
                                shared.push(txid);
                                put_shared(ctx, &shared);
                            }
                            true
                        }
                    }
                };
                Ok(vec![Value::Bool(granted)])
            }
            "unlock" => {
                let txid = OpCtx::u64_arg(args, 0)?;
                release_locks(ctx, txid);
                Ok(vec![])
            }
            "prepare" => {
                let txid = OpCtx::u64_arg(args, 0)?;
                let data = args
                    .get(1)
                    .and_then(Value::as_blob)
                    .ok_or_else(|| OpError::type_error("prepare(txid, blob, expected?)"))?
                    .clone();
                // A prepared participant blocks conflicting prepares until
                // its transaction commits or aborts: without this, a second
                // transaction could validate against the same base version
                // in the window between our prepare and commit, losing one
                // of the two updates.
                let owner = ctx.scratch_get(PREPARED_OWNER).and_then(|v| v.as_u64());
                if matches!(owner, Some(o) if o != txid) {
                    return Ok(vec![Value::Bool(false)]);
                }
                if let Some(expected) = args.get(2).and_then(Value::as_u64) {
                    // Optimistic validation: the write must still be based
                    // on the version the transaction read.
                    let latest = ctx.read_repr(|r| r.get_u64("latest").unwrap_or(0));
                    if latest != expected {
                        return Ok(vec![Value::Bool(false)]);
                    }
                }
                ctx.scratch_put(PREPARED_OWNER, Value::U64(txid));
                ctx.scratch_put(&format!("staged:{txid}"), Value::Blob(data));
                Ok(vec![Value::Bool(true)])
            }
            "commit" => {
                let txid = OpCtx::u64_arg(args, 0)?;
                let staged = ctx.scratch_remove(&format!("staged:{txid}"));
                let Some(Value::Blob(data)) = staged else {
                    return Err(OpError::app(409, "nothing prepared for this transaction"));
                };
                let v = append_version(ctx, data)?;
                clear_prepared(ctx, txid);
                release_locks(ctx, txid);
                Ok(vec![Value::U64(v)])
            }
            "abort" => {
                let txid = OpCtx::u64_arg(args, 0)?;
                ctx.scratch_remove(&format!("staged:{txid}"));
                clear_prepared(ctx, txid);
                release_locks(ctx, txid);
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

fn append_version(ctx: &OpCtx<'_>, data: Bytes) -> Result<u64, OpError> {
    let v = ctx.mutate_repr(|r| {
        let v = r.get_u64("latest").unwrap_or(0) + 1;
        r.put(ver_segment(v), data);
        r.put_u64("latest", v);
        v
    })?;
    ctx.checkpoint()?;
    Ok(v)
}

fn clear_prepared(ctx: &OpCtx<'_>, txid: u64) {
    if ctx.scratch_get(PREPARED_OWNER).and_then(|v| v.as_u64()) == Some(txid) {
        ctx.scratch_remove(PREPARED_OWNER);
    }
}

fn release_locks(ctx: &OpCtx<'_>, txid: u64) {
    if ctx.scratch_get(LOCK_OWNER).and_then(|v| v.as_u64()) == Some(txid) {
        ctx.scratch_remove(LOCK_OWNER);
    }
    let shared: Vec<u64> = shared_holders(ctx)
        .into_iter()
        .filter(|&t| t != txid)
        .collect();
    put_shared(ctx, &shared);
}

/// One immutable, frozen version published for wide read sharing.
///
/// §5 calls for versions "replicated at multiple sites for reliability or
/// performance enhancement"; publishing freezes the blob at creation, so
/// any node can cache a replica through the kernel (§4.3) and serve
/// `read` locally.
pub struct BlobType;

impl BlobType {
    /// The registered type name.
    pub const NAME: &'static str = "efs.blob";
}

impl TypeManager for BlobType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(BlobType::NAME)
            .class("reads", 16)
            .op("read", "reads", Rights::READ)
            .op("size", "reads", Rights::READ)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        let data = args
            .first()
            .and_then(Value::as_blob)
            .ok_or_else(|| OpError::type_error("blob(initial: bytes)"))?
            .clone();
        ctx.mutate_repr(|r| r.put("data", data))?;
        // Frozen from birth: immutable and cacheable.
        ctx.freeze()?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, _args: &[Value]) -> OpResult {
        match op {
            "read" => {
                let data = ctx.read_repr(|r| r.get("data").cloned());
                Ok(vec![Value::Blob(data.unwrap_or_default())])
            }
            "size" => {
                Ok(vec![Value::U64(ctx.read_repr(|r| {
                    r.get("data").map(|b| b.len() as u64).unwrap_or(0)
                }))])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}
