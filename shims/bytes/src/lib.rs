//! In-tree shim for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace carries a
//! minimal re-implementation of the API surface it actually uses:
//! [`Bytes`] (a cheaply-clonable immutable byte buffer), [`BytesMut`], and
//! the [`BufMut`] write trait. Semantics match the real crate for this
//! subset; `Bytes::clone` is O(1) via a shared `Arc<[u8]>`.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }

    /// Copies `src` into a new `Bytes`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from_vec(src.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

/// A growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Creates a buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            inner: vec![0; len],
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional)
    }

    /// Appends `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src)
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Splits off and returns the current contents, leaving `self`
    /// empty but with its spare capacity intact — the encode-scratch
    /// reuse pattern (`real` bytes splits the shared buffer; here the
    /// contents move into an exact-sized allocation instead).
    pub fn split(&mut self) -> BytesMut {
        // `split_off(0)` moves the contents into an exact-sized vector
        // and leaves `self` empty with its original capacity.
        BytesMut {
            inner: self.inner.split_off(0),
        }
    }

    /// Removes and returns the first `len` bytes (the real crate's
    /// `split_to`; here the tail shifts down instead of sharing
    /// storage, so prefer one `advance` per batch over many small
    /// `split_to` calls on a large buffer).
    pub fn split_to(&mut self, len: usize) -> BytesMut {
        assert!(len <= self.inner.len(), "split_to out of range");
        let tail = self.inner.split_off(len);
        BytesMut {
            inner: std::mem::replace(&mut self.inner, tail),
        }
    }

    /// Discards the first `n` bytes (the real crate's `Buf::advance`,
    /// as an inherent method).
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.inner.len(), "advance out of range");
        self.inner.drain(..n);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.inner).fmt(f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

macro_rules! put_ints {
    ($($be:ident, $le:ident, $ty:ty;)*) => {
        $(
            /// Writes the value in big-endian byte order.
            fn $be(&mut self, v: $ty) {
                self.put_slice(&v.to_be_bytes())
            }
            /// Writes the value in little-endian byte order.
            fn $le(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes())
            }
        )*
    };
}

/// Write-side buffer trait (subset of the real `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v])
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8])
    }

    put_ints! {
        put_u16, put_u16_le, u16;
        put_u32, put_u32_le, u32;
        put_u64, put_u64_le, u64;
        put_u128, put_u128_le, u128;
        put_i16, put_i16_le, i16;
        put_i32, put_i32_le, i32;
        put_i64, put_i64_le, i64;
        put_i128, put_i128_le, i128;
        put_f32, put_f32_le, f32;
        put_f64, put_f64_le, f64;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_share_storage_and_compare() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2u8, 3]));
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn bytes_mut_round_trips_ints() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32_le(0xdead_beef);
        m.put_u64(1);
        let b = m.freeze();
        assert_eq!(b.len(), 13);
        assert_eq!(b[0], 7);
        assert_eq!(u32::from_le_bytes(b[1..5].try_into().unwrap()), 0xdead_beef);
    }

    #[test]
    fn split_keeps_scratch_capacity() {
        let mut m = BytesMut::with_capacity(64);
        m.put_slice(b"hello");
        let split = m.split();
        assert_eq!(&split[..], b"hello");
        assert!(m.is_empty());
        assert!(m.capacity() >= 64);
        assert_eq!(split.freeze(), Bytes::from_static(b"hello"));
    }

    #[test]
    fn split_to_and_advance_consume_the_front() {
        let mut m = BytesMut::from(vec![1u8, 2, 3, 4, 5, 6]);
        let head = m.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&m[..], &[3, 4, 5, 6]);
        m.advance(1);
        assert_eq!(&m[..], &[4, 5, 6]);
        m.advance(3);
        assert!(m.is_empty());
    }

    #[test]
    fn zeroed_is_mutable() {
        let mut m = BytesMut::zeroed(4);
        assert_eq!(&m[..], &[0, 0, 0, 0]);
        m[2] = 9;
        assert_eq!(m.freeze(), Bytes::from(vec![0u8, 0, 9, 0]));
    }
}
