/root/repo/target/debug/examples/quickstart-8b781dafb3267d49.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8b781dafb3267d49: examples/quickstart.rs

examples/quickstart.rs:
