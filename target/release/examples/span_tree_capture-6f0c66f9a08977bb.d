/root/repo/target/release/examples/span_tree_capture-6f0c66f9a08977bb.d: examples/span_tree_capture.rs

/root/repo/target/release/examples/span_tree_capture-6f0c66f9a08977bb: examples/span_tree_capture.rs

examples/span_tree_capture.rs:
