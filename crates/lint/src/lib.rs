//! `eden-lint`: Eden-specific invariants clippy cannot express.
//!
//! The Eden argument (paper §2, §4.1–4.2) rests on discipline the Rust
//! type system does not enforce for us: every kernel entry point must
//! verify capability rights before acting, all kernel work must flow
//! through the bounded virtual-processor pool rather than ad-hoc
//! threads, and wire-tag dispatch must fail loudly when a new tag
//! appears. Following Lampson's advice to make such invariants
//! *checkable* rather than conventional, this crate parses the whole
//! workspace (a purpose-built lexer — the build image has no network
//! access for `syn`) and enforces five rules:
//!
//! * **L1 `pool-discipline`** — no `thread::spawn` /
//!   `thread::Builder::…spawn` in `eden-core` outside `vproc.rs` and
//!   the allowlisted `eden-recv` receive loop and `eden-watchdog`
//!   stall watchdog in `node.rs`. Everything else must go through
//!   [`VirtualProcessorPool`].
//! * **L2 `capability-discipline`** — every *public* kernel entry point
//!   in `node.rs` / `object.rs` that accepts a `Capability` must either
//!   call a rights check (`permits` / `check_rights` / `require_rights`)
//!   or forward the capability into another checked call *before* any
//!   store, transport, or dispatch effect on that path.
//! * **L3 `wire-exhaustiveness`** — `match` statements whose arms match
//!   wire `Status` variants or `TAG_*` constants (in `eden-wire` and
//!   `eden-core`) must not use a `_ =>` wildcard arm, so a new tag (like
//!   PR 3's `Overloaded`, tag 11) breaks at lint time instead of being
//!   silently swallowed at runtime. A *named* binding arm (`tag =>`,
//!   `other =>`) stays legal — decoders need one for the error path.
//! * **L4 `panic-hygiene`** — no `.unwrap()` / `.expect(…)` directly on
//!   lock acquisitions or channel ends (`lock`, `read`, `write`, `recv`,
//!   `send`, `join`, …) in non-test kernel code.
//! * **L5 `metric-discipline`** — telemetry flows through the obs
//!   registry: no ad-hoc metric-named atomic counters (`AtomicU64`
//!   fields or statics called `*_count`, `*_sent`, `*_total`, …) in
//!   `eden-core` or `eden-transport`. The one sanctioned cell is the
//!   transport's `stats.rs`, which implements the public
//!   `Endpoint::stats()` contract rather than duplicating the registry.
//!
//! Findings can be suppressed with a `// eden-lint: allow(<rule>)`
//! comment on the offending line or on the line directly above it;
//! suppressed findings are still counted and reported.
//!
//! Test code is exempt everywhere: files under `tests/`, `benches/`,
//! `examples/` or `fixtures/` directories, and `#[cfg(test)] mod`
//! bodies inside library files.
//!
//! [`VirtualProcessorPool`]: ../eden_kernel/vproc/struct.VirtualProcessorPool.html

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::path::Path;

/// The five invariants eden-lint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// L1: kernel work flows through the virtual-processor pool.
    PoolDiscipline,
    /// L2: rights are checked before a capability-bearing entry point
    /// reaches the store, the transport, or dispatch.
    CapabilityDiscipline,
    /// L3: no `_ =>` wildcards in matches over wire `Status`/tag enums.
    WireExhaustiveness,
    /// L4: no `unwrap`/`expect` on locks or channel ends in kernel code.
    PanicHygiene,
    /// L5: metrics go through the obs registry, not ad-hoc atomics.
    MetricDiscipline,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 5] = [
        Rule::PoolDiscipline,
        Rule::CapabilityDiscipline,
        Rule::WireExhaustiveness,
        Rule::PanicHygiene,
        Rule::MetricDiscipline,
    ];

    /// The stable kebab-case name used in reports and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PoolDiscipline => "pool-discipline",
            Rule::CapabilityDiscipline => "capability-discipline",
            Rule::WireExhaustiveness => "wire-exhaustiveness",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::MetricDiscipline => "metric-discipline",
        }
    }

    /// Parses a rule name as used in `allow(<rule>)`.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant was violated.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// Whether an `eden-lint: allow(...)` comment covers this line.
    pub suppressed: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}{}",
            self.file,
            self.line,
            self.rule,
            self.message,
            if self.suppressed { " (suppressed)" } else { "" }
        )
    }
}

/// The outcome of scanning a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a suppression comment.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// `(unsuppressed, suppressed)` counts per rule, for the summary.
    pub fn counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for rule in Rule::ALL {
            counts.insert(rule.name(), (0, 0));
        }
        for f in &self.findings {
            let entry = counts.entry(f.rule.name()).or_default();
            if f.suppressed {
                entry.1 += 1;
            } else {
                entry.0 += 1;
            }
        }
        counts
    }

    /// Serializes the report as a stable machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"suppressed\": {}, \"message\": \"{}\"}}{}\n",
                f.rule,
                json_escape(&f.file),
                f.line,
                f.suppressed,
                json_escape(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"counts\": {\n");
        let counts = self.counts();
        let last = counts.len();
        for (i, (rule, (open, suppressed))) in counts.iter().enumerate() {
            out.push_str(&format!(
                "    \"{rule}\": {{\"unsuppressed\": {open}, \"suppressed\": {suppressed}}}{}\n",
                if i + 1 == last { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  }},\n  \"files_scanned\": {},\n  \"ok\": {}\n}}\n",
            self.files_scanned,
            self.unsuppressed().count() == 0
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ================= Source model =================

/// A lexed view of one file: `code` and `comments` are byte-for-byte the
/// same length as `raw`, with the other class of text blanked to spaces
/// (string and char literal *contents* are blanked in `code` too), so
/// byte offsets line up across all three views.
struct SourceModel {
    raw: String,
    code: String,
    comments: String,
    /// Byte offset at which each line starts.
    line_starts: Vec<usize>,
    /// Per line: true when inside a `#[cfg(test)] mod` body.
    test_lines: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

impl SourceModel {
    fn new(raw: &str) -> SourceModel {
        let mut code = String::with_capacity(raw.len());
        let mut comments = String::with_capacity(raw.len());
        let mut state = LexState::Normal;
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;

        // Pushes `c` to the active buffer and pads the other with spaces
        // of the same UTF-8 width, preserving offsets. Newlines go to
        // both so line structure is shared.
        let push = |code: &mut String, comments: &mut String, c: char, to_code: bool| {
            let pad = " ".repeat(c.len_utf8());
            if c == '\n' {
                code.push('\n');
                comments.push('\n');
            } else if to_code {
                code.push(c);
                comments.push_str(&pad);
            } else {
                comments.push(c);
                code.push_str(&pad);
            }
        };
        // Blanks a char in both views (string/char literal contents).
        let blank = |code: &mut String, comments: &mut String, c: char| {
            if c == '\n' {
                code.push('\n');
                comments.push('\n');
            } else {
                let pad = " ".repeat(c.len_utf8());
                code.push_str(&pad);
                comments.push_str(&pad);
            }
        };

        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                LexState::Normal => match c {
                    '/' if next == Some('/') => {
                        state = LexState::LineComment;
                        push(&mut code, &mut comments, c, false);
                    }
                    '/' if next == Some('*') => {
                        state = LexState::BlockComment(1);
                        push(&mut code, &mut comments, c, false);
                        push(&mut code, &mut comments, '*', false);
                        i += 1;
                    }
                    '"' => {
                        state = LexState::Str { raw_hashes: None };
                        push(&mut code, &mut comments, c, true);
                    }
                    'r' | 'b' if starts_raw_string(&bytes, i) => {
                        // Emit the prefix up to and including the quote.
                        let mut hashes = 0u32;
                        push(&mut code, &mut comments, c, true);
                        i += 1;
                        if bytes.get(i) == Some(&'r') && c == 'b' {
                            push(&mut code, &mut comments, 'r', true);
                            i += 1;
                        }
                        while bytes.get(i) == Some(&'#') {
                            hashes += 1;
                            push(&mut code, &mut comments, '#', true);
                            i += 1;
                        }
                        // Now at the opening quote.
                        push(&mut code, &mut comments, '"', true);
                        state = LexState::Str {
                            raw_hashes: Some(hashes),
                        };
                    }
                    'b' if next == Some('\'') => {
                        push(&mut code, &mut comments, c, true);
                        push(&mut code, &mut comments, '\'', true);
                        i += 1;
                        state = LexState::Char;
                    }
                    '\'' if is_char_literal(&bytes, i) => {
                        push(&mut code, &mut comments, c, true);
                        state = LexState::Char;
                    }
                    c => push(&mut code, &mut comments, c, true),
                },
                LexState::LineComment => {
                    if c == '\n' {
                        state = LexState::Normal;
                    }
                    push(&mut code, &mut comments, c, false);
                }
                LexState::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        push(&mut code, &mut comments, c, false);
                        push(&mut code, &mut comments, '/', false);
                        i += 1;
                        state = if depth == 1 {
                            LexState::Normal
                        } else {
                            LexState::BlockComment(depth - 1)
                        };
                    } else if c == '/' && next == Some('*') {
                        push(&mut code, &mut comments, c, false);
                        push(&mut code, &mut comments, '*', false);
                        i += 1;
                        state = LexState::BlockComment(depth + 1);
                    } else {
                        push(&mut code, &mut comments, c, false);
                    }
                }
                LexState::Str { raw_hashes: None } => match c {
                    '\\' => {
                        blank(&mut code, &mut comments, c);
                        if let Some(n) = next {
                            blank(&mut code, &mut comments, n);
                            i += 1;
                        }
                    }
                    '"' => {
                        push(&mut code, &mut comments, c, true);
                        state = LexState::Normal;
                    }
                    c => blank(&mut code, &mut comments, c),
                },
                LexState::Str {
                    raw_hashes: Some(h),
                } => {
                    if c == '"' && raw_string_closes(&bytes, i, h) {
                        push(&mut code, &mut comments, c, true);
                        for _ in 0..h {
                            i += 1;
                            push(&mut code, &mut comments, '#', true);
                        }
                        state = LexState::Normal;
                    } else {
                        blank(&mut code, &mut comments, c);
                    }
                }
                LexState::Char => match c {
                    '\\' => {
                        blank(&mut code, &mut comments, c);
                        if let Some(n) = next {
                            blank(&mut code, &mut comments, n);
                            i += 1;
                        }
                    }
                    '\'' => {
                        push(&mut code, &mut comments, c, true);
                        state = LexState::Normal;
                    }
                    c => blank(&mut code, &mut comments, c),
                },
            }
            i += 1;
        }

        let mut line_starts = vec![0usize];
        for (pos, b) in code.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(pos + 1);
            }
        }
        let test_lines = mark_test_lines(&code, &line_starts);
        SourceModel {
            raw: raw.to_string(),
            code,
            comments,
            line_starts,
            test_lines,
        }
    }

    /// 1-based line for a byte offset.
    fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// The code text of one 1-based line.
    fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|e| e - 1)
            .unwrap_or(self.code.len());
        &self.code[start..end.max(start)]
    }
}

fn starts_raw_string(bytes: &[char], i: usize) -> bool {
    // r"..."  r#"..."#  br"..."  br#"..."#
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

fn raw_string_closes(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime: `'x'` and `'\n'` are
/// literals; `'a` followed by anything but a closing quote is a
/// lifetime.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)] mod … { … }` bodies.
fn mark_test_lines(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let mut flags = vec![false; line_starts.len()];
    let mut depth: i32 = 0;
    let mut pending_cfg_test = false;
    let mut regions: Vec<i32> = Vec::new(); // depths at which a test mod opened
    for (idx, &start) in line_starts.iter().enumerate() {
        let end = line_starts.get(idx + 1).copied().unwrap_or(code.len());
        let line = &code[start..end];
        let compact: String = line.split_whitespace().collect();
        if compact.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if !regions.is_empty() {
            flags[idx] = true;
        } else if pending_cfg_test {
            // The attribute line and the mod header are test lines too.
            flags[idx] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_cfg_test {
                        regions.push(depth);
                        pending_cfg_test = false;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
    }
    flags
}

// ================= Suppressions =================

/// Lines covered by `// eden-lint: allow(<rule>)`, per rule. A comment
/// on a code-bearing line covers that line; a comment on its own line
/// covers the next code-bearing line as well.
fn collect_suppressions(model: &SourceModel) -> HashMap<Rule, HashSet<usize>> {
    let mut map: HashMap<Rule, HashSet<usize>> = HashMap::new();
    let total = model.line_starts.len();
    for line in 1..=total {
        let start = model.line_starts[line - 1];
        let end = model
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(model.comments.len());
        let comment = &model.comments[start..end.min(model.comments.len())];
        let Some(pos) = comment.find("eden-lint:") else {
            continue;
        };
        let rest = &comment[pos + "eden-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        for name in rest[open + "allow(".len()..open + close].split(',') {
            let Some(rule) = Rule::from_name(name.trim()) else {
                continue;
            };
            let lines = map.entry(rule).or_default();
            lines.insert(line);
            if model.code_line(line).trim().is_empty() {
                // Standalone comment: cover the next code-bearing line.
                for next in line + 1..=total {
                    if !model.code_line(next).trim().is_empty() {
                        lines.insert(next);
                        break;
                    }
                }
            }
        }
    }
    map
}

// ================= Token helpers =================

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offsets of whole-word occurrences of `needle` in `hay`.
fn word_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// The identifier ending at byte offset `end` (exclusive), if any.
fn ident_before(code: &str, mut end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let stop = end;
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1]) {
        start -= 1;
    }
    (start < stop).then(|| &code[start..stop])
}

/// Skips a balanced `(...)` group ending at `close` (offset of `)`),
/// returning the offset of the matching `(`.
fn open_paren_of(code: &str, close: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    if bytes.get(close) != Some(&b')') {
        return None;
    }
    let mut depth = 0i32;
    let mut i = close;
    loop {
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Finds the byte offset of the brace matching the `{` at `open`.
fn matching_brace(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    if bytes.get(open) != Some(&b'{') {
        return None;
    }
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

// ================= Rules =================

/// Scans one file's source, applying every rule whose path scope
/// matches `rel_path` (workspace-relative, forward slashes).
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    if rel_path.split('/').any(|part| {
        matches!(
            part,
            "tests" | "benches" | "examples" | "fixtures" | "target"
        )
    }) {
        return Vec::new();
    }
    let model = SourceModel::new(source);
    let mut findings = Vec::new();
    pool_discipline(rel_path, &model, &mut findings);
    capability_discipline(rel_path, &model, &mut findings);
    wire_exhaustiveness(rel_path, &model, &mut findings);
    panic_hygiene(rel_path, &model, &mut findings);
    metric_discipline(rel_path, &model, &mut findings);

    let suppressions = collect_suppressions(&model);
    for f in &mut findings {
        if let Some(lines) = suppressions.get(&f.rule) {
            f.suppressed = lines.contains(&f.line);
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// L1: kernel threads come from the virtual-processor pool; transport
/// threads are named (`eden-mesh-*`, `eden-tcp-*`) so flight-recorder
/// dumps and leak hunts can attribute them.
fn pool_discipline(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    let in_core = rel_path.starts_with("crates/core/src/") && !rel_path.ends_with("vproc.rs");
    let in_transport = rel_path.starts_with("crates/transport/src/");
    if !in_core && !in_transport {
        return;
    }
    let mut sites: Vec<usize> = word_occurrences(&model.code, "spawn")
        .into_iter()
        .filter(|&at| {
            // `thread::spawn(` directly, or `.spawn(` completing a
            // `thread::Builder` chain within the preceding few lines.
            let before = &model.code[..at];
            if before.ends_with("thread::") {
                return true;
            }
            if before.ends_with('.') {
                let window_start = before.len().saturating_sub(300);
                return before[window_start..].contains("thread::Builder");
            }
            false
        })
        .collect();
    sites.dedup_by_key(|at| model.line_of(*at));
    for at in sites {
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        // In-lint allowlists, checked in a window around the spawn:
        // the kernel's two legitimate direct threads (the per-node
        // receive loop, named "eden-recv-<id>", and the stall watchdog,
        // named "eden-watchdog-<id>" — both must stay off the pool they
        // observe), and the transport's infrastructure threads, which
        // must carry an "eden-mesh-*" or "eden-tcp-*" name (accept
        // loops, readers, per-peer writers, the loopback delay pump).
        let lo = model.line_starts[line.saturating_sub(4).max(1) - 1];
        let hi = model
            .line_starts
            .get(line + 3)
            .copied()
            .unwrap_or(model.raw.len());
        let window = &model.raw[lo..hi];
        if rel_path.ends_with("node.rs")
            && (window.contains("eden-recv") || window.contains("eden-watchdog"))
        {
            continue;
        }
        if in_transport && (window.contains("eden-mesh-") || window.contains("eden-tcp-")) {
            continue;
        }
        let message = if in_transport {
            "direct thread spawn in eden-transport without an eden-mesh-*/eden-tcp-* \
             thread name; transport threads must be named for attribution"
        } else {
            "direct thread spawn in eden-core; kernel work must go through \
             VirtualProcessorPool::submit (allowlisted: vproc.rs workers, \
             the eden-recv loop, the eden-watchdog thread)"
        };
        out.push(Finding {
            rule: Rule::PoolDiscipline,
            file: rel_path.to_string(),
            line,
            message: message.to_string(),
            suppressed: false,
        });
    }
}

/// L2: rights checks precede effects on capability-bearing entry points.
fn capability_discipline(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    if !(rel_path == "crates/core/src/node.rs" || rel_path == "crates/core/src/object.rs") {
        return;
    }
    const CHECKS: [&str; 3] = ["permits(", "check_rights", "require_rights"];
    const EFFECTS: [&str; 7] = [
        ".endpoint.",
        ".store.",
        ".dispatch",
        "dispatch(",
        ".enqueue",
        "remote_invoke(",
        "locate_broadcast(",
    ];
    let code = &model.code;
    for at in word_occurrences(code, "fn") {
        // Only `pub fn` (not `pub(crate) fn`): look back for `pub` with
        // nothing but whitespace between.
        let Some(prev) = ident_before(code, at) else {
            continue;
        };
        if prev != "pub" {
            continue;
        }
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        let Some(params_open) = code[at..].find('(').map(|p| at + p) else {
            continue;
        };
        let Some(params_close) = matching_paren_fwd(code, params_open) else {
            continue;
        };
        let params = &code[params_open + 1..params_close];
        let Some(cap_param) = capability_param(params) else {
            continue;
        };
        let Some(body_open) = code[params_close..].find('{').map(|p| params_close + p) else {
            continue;
        };
        let Some(body_close) = matching_brace(code, body_open) else {
            continue;
        };
        let body = &code[body_open..body_close];

        let first_effect = EFFECTS.iter().filter_map(|t| body.find(t)).min();
        let Some(effect_at) = first_effect else {
            continue; // No store/transport/dispatch on this path.
        };
        let first_check = CHECKS.iter().filter_map(|t| body.find(t)).min();
        // Forwarding the capability into another call (delegation to a
        // checked entry point) also counts as the guard.
        let first_forward = word_occurrences(body, &cap_param).into_iter().find(|&p| {
            let lead = body[..p].trim_end();
            lead.ends_with('(') || lead.ends_with(',')
        });
        let guard = match (first_check, first_forward) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if guard.map(|g| g > effect_at).unwrap_or(true) {
            let fn_name = code[at + 2..params_open].trim().to_string();
            out.push(Finding {
                rule: Rule::CapabilityDiscipline,
                file: rel_path.to_string(),
                line,
                message: format!(
                    "public kernel entry point `{fn_name}` accepts a Capability but reaches \
                     a store/transport/dispatch call before any rights check \
                     (permits/check_rights/require_rights) or checked delegation"
                ),
                suppressed: false,
            });
        }
    }
}

/// Forward matcher for `(...)` starting at `open`.
fn matching_paren_fwd(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    if bytes.get(open) != Some(&b'(') {
        return None;
    }
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// The name of the first parameter typed `Capability` / `&Capability`.
fn capability_param(params: &str) -> Option<String> {
    let mut depth = 0i32;
    let mut start = 0usize;
    let bytes = params.as_bytes();
    let mut pieces = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'<' | b'[' => depth += 1,
            b')' | b'>' | b']' => depth -= 1,
            b',' if depth == 0 => {
                pieces.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&params[start..]);
    for piece in pieces {
        let Some((name, ty)) = piece.split_once(':') else {
            continue;
        };
        let ty = ty.trim().trim_start_matches('&').trim();
        if ty == "Capability" || ty.ends_with("::Capability") {
            return Some(name.trim().trim_start_matches("mut ").trim().to_string());
        }
    }
    None
}

/// L3: matches over wire `Status`/`TAG_*`/directory enums are exhaustive.
fn wire_exhaustiveness(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    if !(rel_path.starts_with("crates/wire/src")
        || rel_path.starts_with("crates/core/src")
        || rel_path.starts_with("crates/directory/src"))
    {
        return;
    }
    let code = &model.code;
    for at in word_occurrences(code, "match") {
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        // Scrutinee runs to the first `{` at bracket depth 0.
        let mut depth = 0i32;
        let mut open = None;
        for (i, b) in code.bytes().enumerate().skip(at + 5) {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(i);
                    break;
                }
                b';' if depth == 0 => break, // not a match expression
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = matching_brace(code, open) else {
            continue;
        };
        let arms = match_arms(&code[open + 1..close]);
        let is_wire_match = arms.iter().any(|(pat, _)| {
            // "Status::" also covers "MemberStatus::".
            pat.contains("Status::")
                || pat.contains("TAG_")
                || pat.contains("DirState::")
                || pat.contains("DirRegisterKind::")
        });
        if !is_wire_match {
            continue;
        }
        for (pat, rel_off) in &arms {
            let wildcard = pat
                .split('|')
                .any(|alt| alt.trim() == "_" || alt.trim().starts_with("_ if"));
            if wildcard {
                out.push(Finding {
                    rule: Rule::WireExhaustiveness,
                    file: rel_path.to_string(),
                    line: model.line_of(open + 1 + rel_off),
                    message: "wildcard `_ =>` arm in a match over wire Status/tag variants; \
                              enumerate the variants (or bind a name for the error path) so \
                              new wire tags fail loudly"
                        .to_string(),
                    suppressed: false,
                });
            }
        }
    }
}

/// Splits a match body into `(pattern, offset_of_pattern)` pairs.
/// Patterns run to the first `=>` at bracket depth 0; arm bodies are a
/// balanced block or run to the next `,` at depth 0.
fn match_arms(body: &str) -> Vec<(String, usize)> {
    let bytes = body.as_bytes();
    let mut arms = Vec::new();
    let mut i = 0usize;
    let len = bytes.len();
    while i < len {
        while i < len && (bytes[i].is_ascii_whitespace() || bytes[i] == b',') {
            i += 1;
        }
        if i >= len {
            break;
        }
        let pat_start = i;
        let mut depth = 0i32;
        let mut arrow = None;
        while i < len {
            match bytes[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'=' if depth == 0 && bytes.get(i + 1) == Some(&b'>') => {
                    arrow = Some(i);
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        arms.push((body[pat_start..arrow].trim().to_string(), pat_start));
        i = arrow + 2;
        while i < len && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < len && bytes[i] == b'{' {
            let mut depth = 0i32;
            while i < len {
                match bytes[i] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            let mut depth = 0i32;
            while i < len {
                match bytes[i] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
        }
    }
    arms
}

/// L4: no panicking accessors on locks or channel ends in kernel code.
fn panic_hygiene(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    let scoped = [
        "crates/core/src",
        "crates/obs/src",
        "crates/wire/src",
        "crates/transport/src",
        "crates/directory/src",
    ];
    if !scoped.iter().any(|s| rel_path.starts_with(s)) {
        return;
    }
    const TARGETS: [&str; 10] = [
        "lock",
        "try_lock",
        "read",
        "write",
        "recv",
        "recv_timeout",
        "try_recv",
        "send",
        "try_send",
        "join",
    ];
    let code = &model.code;
    let mut sites: Vec<(usize, &'static str)> = Vec::new();
    for at in word_occurrences(code, "unwrap") {
        if code[at..].starts_with("unwrap()") {
            sites.push((at, ".unwrap()"));
        }
    }
    for at in word_occurrences(code, "expect") {
        if code.as_bytes().get(at + 6) == Some(&b'(') {
            sites.push((at, ".expect(…)"));
        }
    }
    for (at, what) in sites {
        // Require `.` immediately before, then a balanced call group,
        // then one of the lock/channel method names.
        let mut dot = at;
        while dot > 0 && code.as_bytes()[dot - 1].is_ascii_whitespace() {
            dot -= 1;
        }
        if dot == 0 || code.as_bytes()[dot - 1] != b'.' {
            continue;
        }
        let mut close = dot - 1;
        while close > 0 && code.as_bytes()[close - 1].is_ascii_whitespace() {
            close -= 1;
        }
        if close == 0 || code.as_bytes()[close - 1] != b')' {
            continue;
        }
        let Some(open) = open_paren_of(code, close - 1) else {
            continue;
        };
        let Some(method) = ident_before(code, open) else {
            continue;
        };
        if !TARGETS.contains(&method) {
            continue;
        }
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        out.push(Finding {
            rule: Rule::PanicHygiene,
            file: rel_path.to_string(),
            line,
            message: format!(
                "{what} on `.{method}(…)` in non-test kernel code; propagate the error or \
                 recover (e.g. `unwrap_or_else(|e| e.into_inner())` for poisoned locks)"
            ),
            suppressed: false,
        });
    }
}

/// L5: telemetry flows through the obs registry. An atomic integer
/// field or static with a metric-shaped name (`*_count`, `*_sent`,
/// `*_total`, …) in kernel or transport code is a parallel metrics
/// system: it is invisible to Prometheus export, metric merging, and
/// the monitor, and it skips the registry's naming discipline. The one
/// sanctioned cell is `crates/transport/src/stats.rs`, which implements
/// the public `Endpoint::stats()` contract.
fn metric_discipline(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    let scoped =
        rel_path.starts_with("crates/core/src/") || rel_path.starts_with("crates/transport/src/");
    if !scoped || rel_path == "crates/transport/src/stats.rs" {
        return;
    }
    const TYPES: [&str; 4] = ["AtomicU64", "AtomicU32", "AtomicUsize", "AtomicI64"];
    let code = &model.code;
    let mut seen_lines: HashSet<usize> = HashSet::new();
    for ty in TYPES {
        for at in word_occurrences(code, ty) {
            let line = model.line_of(at);
            if model.is_test_line(line) || !seen_lines.insert(line) {
                continue;
            }
            let Some(name) = declared_name(model.code_line(line)) else {
                continue;
            };
            if !is_metric_name(&name) {
                continue;
            }
            out.push(Finding {
                rule: Rule::MetricDiscipline,
                file: rel_path.to_string(),
                line,
                message: format!(
                    "ad-hoc atomic metric `{name}` in kernel/transport code; counters, \
                     gauges and histograms must go through the obs registry \
                     (ObsRegistry::counter/gauge/histogram) so they export, merge and \
                     scrape like every other metric"
                ),
                suppressed: false,
            });
        }
    }
}

/// The declared name on a `name: Type` line — a struct field, a
/// struct-literal initializer, or a (possibly `pub`) `static` item.
/// Returns `None` for lines that are not declarations (method chains,
/// imports, locals).
fn declared_name(line_code: &str) -> Option<String> {
    let mut t = line_code.trim_start();
    for prefix in ["pub ", "static ", "mut "] {
        loop {
            if let Some(rest) = t.strip_prefix(prefix) {
                t = rest.trim_start();
            } else if prefix == "pub " && t.starts_with("pub(") {
                t = t.split_once(')')?.1.trim_start();
            } else {
                break;
            }
        }
    }
    let (name, _) = t.split_once(':')?;
    let name = name.trim_end();
    (!name.is_empty() && name.bytes().all(is_ident_char)).then(|| name.to_string())
}

/// Whether an identifier reads as a metric: exactly one of the metric
/// words, or carrying one as an underscore-separated component.
fn is_metric_name(name: &str) -> bool {
    const METRIC_WORDS: [&str; 22] = [
        "count",
        "counts",
        "counter",
        "counters",
        "total",
        "totals",
        "hits",
        "misses",
        "dropped",
        "drops",
        "shed",
        "sent",
        "received",
        "failures",
        "retries",
        "stalls",
        "errors",
        "rejected",
        "executed",
        "evictions",
        "broadcasts",
        "latency",
    ];
    let lname = name.to_ascii_lowercase();
    METRIC_WORDS.iter().any(|w| {
        lname == *w
            || lname.starts_with(&format!("{w}_"))
            || lname.ends_with(&format!("_{w}"))
            || lname.contains(&format!("_{w}_"))
    })
}

// ================= Workspace walking =================

/// Scans every in-scope `.rs` file under `root` (the workspace root).
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs_files(&root.join(top), &mut files)?;
    }
    files.sort();
    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report
            .findings
            .extend(scan_source(&rel, &source).into_iter().map(|mut f| {
                f.file = rel.clone();
                f
            }));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(
                name.as_str(),
                "target" | ".git" | "tests" | "benches" | "examples" | "fixtures"
            ) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_blanks_strings_and_comments() {
        let m = SourceModel::new("let a = \"thread::spawn\"; // thread::spawn\nlet b = 'x';\n");
        assert!(!m.code.contains("thread::spawn"));
        assert!(m.comments.contains("thread::spawn"));
        assert_eq!(m.raw.len(), m.code.len());
        assert_eq!(m.raw.len(), m.comments.len());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = SourceModel::new("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(m.code.contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let m = SourceModel::new(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(4));
        assert!(!m.is_test_line(6));
    }

    #[test]
    fn suppression_on_own_line_covers_next_code_line() {
        let src = "// eden-lint: allow(panic-hygiene)\nlet g = m.lock().unwrap();\n";
        let findings = scan_source("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].suppressed);
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut report = Report::default();
        report.findings.push(Finding {
            rule: Rule::PanicHygiene,
            file: "a \"quoted\".rs".into(),
            line: 3,
            message: "msg".into(),
            suppressed: false,
        });
        let json = report.to_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ok\": false"));
    }
}
