// Fixture: L4 panic-hygiene clean file (scanned as crates/core/src/x.rs).
// Poison recovery, error propagation, unwraps on non-lock calls, and
// test code are all legal.

fn drain(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>) -> Option<u64> {
    let mut queue = state.lock().unwrap_or_else(|e| e.into_inner());
    queue.pop().or_else(|| rx.recv().ok())
}

fn first(args: &[u64]) -> u64 {
    // unwrap on a slice accessor is outside L4's lock/channel scope.
    args.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_locks() {
        let m = std::sync::Mutex::new(3);
        assert_eq!(*m.lock().unwrap(), 3);
    }
}
