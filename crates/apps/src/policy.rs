//! A policy object: location decisions as an invocable service.
//!
//! §4.3: "some objects may have the ability to make location decisions
//! for other objects in the system; for example, there may be a policy
//! object responsible for the location of objects in a particular
//! subsystem." This type wraps the kernel `move` primitive behind
//! invocations, spreading the objects registered with it round-robin
//! across the nodes it knows — callers must present capabilities
//! carrying `Rights::MOVE`, so a policy object can only relocate objects
//! whose owners delegated that authority.

use eden_capability::{NodeId, Rights};
use eden_kernel::{OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// The placement policy object.
///
/// Operations:
///
/// | op | class | rights | effect |
/// |---|---|---|---|
/// | `place [cap]` | control (1) | EXECUTE | move the object to the next node in rotation; returns the chosen node |
/// | `send_to [cap, node]` | control | EXECUTE | move the object to a specific node |
/// | `nodes` | reads (4) | READ | the nodes this policy spreads over |
pub struct PolicyObjectType;

impl PolicyObjectType {
    /// The registered type name.
    pub const NAME: &'static str = "placement-policy";
}

impl TypeManager for PolicyObjectType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(PolicyObjectType::NAME)
            .class("control", 1)
            .class("reads", 4)
            .op("place", "control", Rights::EXECUTE)
            .op("send_to", "control", Rights::EXECUTE)
            .op("nodes", "reads", Rights::READ)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, _args: &[Value]) -> Result<(), OpError> {
        ctx.mutate_repr(|r| r.put_u64("cursor", 0))?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "place" => {
                let target = OpCtx::cap_arg(args, 0)?;
                if !target.permits(Rights::MOVE) {
                    return Err(OpError::app(
                        403,
                        "the presented capability does not delegate MOVE",
                    ));
                }
                // Rotate over this node plus its peers, deterministically.
                let mut nodes: Vec<NodeId> = ctx.node().peers();
                nodes.push(ctx.node_id());
                nodes.sort();
                let cursor = ctx.mutate_repr(|r| {
                    let c = r.get_u64("cursor").unwrap_or(0);
                    r.put_u64("cursor", c + 1);
                    c
                })?;
                let choice = nodes[(cursor as usize) % nodes.len()];
                // The target may be anywhere; only a locally active object
                // can be moved by this kernel, so relocate via the
                // object's own `relocate`-style op when remote. Here the
                // kernel move covers the local case and is a no-op
                // otherwise.
                if ctx.node().is_local(target.name()) {
                    ctx.node().move_object(target, choice)?;
                }
                Ok(vec![Value::U64(choice.0 as u64)])
            }
            "send_to" => {
                let target = OpCtx::cap_arg(args, 0)?;
                let dst = NodeId(OpCtx::u64_arg(args, 1)? as u16);
                if !ctx.node().is_local(target.name()) {
                    return Err(OpError::app(
                        409,
                        "object is not active on the policy's node",
                    ));
                }
                ctx.node().move_object(target, dst)?;
                Ok(vec![])
            }
            "nodes" => {
                let mut nodes: Vec<NodeId> = ctx.node().peers();
                nodes.push(ctx.node_id());
                nodes.sort();
                Ok(vec![Value::List(
                    nodes.into_iter().map(|n| Value::U64(n.0 as u64)).collect(),
                )])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}
