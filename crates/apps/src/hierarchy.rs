//! The §5 abstract type hierarchy, demonstrated.
//!
//! "One type may be declared as a subtype of another, so that the
//! subtype inherits the operations of its supertype. This type
//! hierarchy … provides a convenient mechanism for factoring information
//! and for defining defaults. Examples of attributes that might usefully
//! be inherited include display code for use with the object editor, and
//! operations concerned with object location."
//!
//! This module builds exactly that family:
//!
//! * [`ResourceType`] (`resource`) — the root: the inheritable defaults
//!   the paper names. `describe` is the "display code"; `whereis` /
//!   `relocate` are the location operations; `label` management is the
//!   factored common state.
//! * [`NamedQueueType`] (`resource.queue`) — a subtype adding FIFO
//!   operations and *overriding* `describe` with a type-specific
//!   rendering.
//! * [`AuditedQueueType`] (`resource.queue.audited`) — a sub-subtype
//!   that inherits everything two levels deep and adds an audit trail
//!   around the inherited mutators.
//!
//! Inherited operations execute the *defining* type's code against the
//! *instance's* representation — the Simula/Smalltalk semantics the
//! paper cites.

use eden_capability::{NodeId, Rights};
use eden_kernel::{OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// The root supertype: inheritable defaults for every "resource".
pub struct ResourceType;

impl ResourceType {
    /// The registered type name.
    pub const NAME: &'static str = "resource";
}

impl TypeManager for ResourceType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(ResourceType::NAME)
            .class("reads", 4)
            .class("writes", 1)
            .op("describe", "reads", Rights::READ)
            .op("whereis", "reads", Rights::READ)
            .op("relocate", "writes", Rights::MOVE)
            .op("set_label", "writes", Rights::WRITE)
            .op("label", "reads", Rights::READ)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        let label = args
            .first()
            .and_then(Value::as_str)
            .unwrap_or("unnamed resource");
        ctx.mutate_repr(|r| r.put_str("label", label))?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            // The default "display code": subtypes may override.
            "describe" => {
                let label = ctx.read_repr(|r| r.get_str("label")).unwrap_or_default();
                Ok(vec![Value::Str(format!(
                    "resource '{label}' on {}",
                    ctx.node_id()
                ))])
            }
            "whereis" => Ok(vec![Value::U64(ctx.node_id().0 as u64)]),
            "relocate" => {
                let dst = OpCtx::u64_arg(args, 0)? as u16;
                ctx.move_to(NodeId(dst))?;
                Ok(vec![])
            }
            "set_label" => {
                let label = OpCtx::str_arg(args, 0)?.to_string();
                ctx.mutate_repr(|r| r.put_str("label", &label))?;
                Ok(vec![])
            }
            "label" => Ok(vec![Value::Str(
                ctx.read_repr(|r| r.get_str("label")).unwrap_or_default(),
            )]),
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// A queue that *is a* resource.
pub struct NamedQueueType;

impl NamedQueueType {
    /// The registered type name.
    pub const NAME: &'static str = "resource.queue";
}

impl TypeManager for NamedQueueType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(NamedQueueType::NAME)
            .with_parent(ResourceType::NAME)
            .class("reads", 4)
            .class("mutators", 1)
            .op("push", "mutators", Rights::WRITE)
            .op("pop", "mutators", Rights::WRITE)
            .op("depth", "reads", Rights::READ)
            // Override the inherited display code (§5's object-editor
            // attribute) with a queue-specific rendering.
            .op("describe", "reads", Rights::READ)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        ResourceType.initialize(ctx, args)?;
        ctx.mutate_repr(|r| {
            r.put_u64("head", 0);
            r.put_u64("tail", 0);
        })?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "push" => {
                let item = args
                    .first()
                    .cloned()
                    .ok_or_else(|| OpError::type_error("push(value)"))?;
                ctx.mutate_repr(|r| {
                    let tail = r.get_u64("tail").unwrap_or(0);
                    r.put_value(format!("q:{tail:016}"), &item);
                    r.put_u64("tail", tail + 1);
                })?;
                Ok(vec![])
            }
            "pop" => {
                let item = ctx.mutate_repr(|r| {
                    let head = r.get_u64("head").unwrap_or(0);
                    if head >= r.get_u64("tail").unwrap_or(0) {
                        return None;
                    }
                    let seg = format!("q:{head:016}");
                    let item = r.get_value(&seg);
                    r.remove(&seg);
                    r.put_u64("head", head + 1);
                    item
                })?;
                Ok(vec![item.unwrap_or(Value::Unit)])
            }
            "depth" => Ok(vec![Value::U64(ctx.read_repr(|r| {
                r.get_u64("tail").unwrap_or(0) - r.get_u64("head").unwrap_or(0)
            }))]),
            "describe" => {
                let label = ctx.read_repr(|r| r.get_str("label")).unwrap_or_default();
                let depth = ctx
                    .read_repr(|r| r.get_u64("tail").unwrap_or(0) - r.get_u64("head").unwrap_or(0));
                Ok(vec![Value::Str(format!(
                    "queue '{label}' ({depth} queued) on {}",
                    ctx.node_id()
                ))])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// A queue that records every mutation — inheriting two levels deep.
pub struct AuditedQueueType;

impl AuditedQueueType {
    /// The registered type name.
    pub const NAME: &'static str = "resource.queue.audited";
}

impl TypeManager for AuditedQueueType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(AuditedQueueType::NAME)
            .with_parent(NamedQueueType::NAME)
            .class("reads", 4)
            .class("mutators", 1)
            // Override the mutators to add auditing; everything else
            // (describe, depth, pop, whereis, relocate, labels…) is
            // inherited from the two ancestors.
            .op("push", "mutators", Rights::WRITE)
            .op("audit", "reads", Rights::READ)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        NamedQueueType.initialize(ctx, args)?;
        ctx.mutate_repr(|r| r.put_u64("audits", 0))?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "push" => {
                // Audit, then delegate to the supertype's implementation.
                let n = ctx.mutate_repr(|r| {
                    let n = r.get_u64("audits").unwrap_or(0) + 1;
                    r.put_u64("audits", n);
                    r.put_str(
                        format!("audit:{n:08}"),
                        &format!("push by {} via '{}'", ctx.caller(), ctx.op()),
                    );
                    n
                })?;
                let _ = n;
                NamedQueueType.dispatch(ctx, "push", args)
            }
            "audit" => {
                let entries: Vec<Value> = ctx.read_repr(|r| {
                    r.segments_with_prefix("audit:")
                        .filter_map(|seg| r.get_str(seg).map(Value::Str))
                        .collect()
                });
                Ok(vec![Value::List(entries)])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}
