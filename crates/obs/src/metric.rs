//! Counters and gauges: the two scalar metric kinds.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotone event counter. All operations are relaxed atomics — safe
/// to bump from any kernel thread without coordination.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1)
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, in-service count). Signed so a
/// dec racing ahead of its inc cannot wrap.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1)
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1)
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the level outright.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_and_gauges_track_concurrent_updates() {
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, g) = (Arc::clone(&c), Arc::clone(&g));
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        g.inc();
                        g.dec();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
        assert_eq!(g.get(), 0);
    }
}
