/root/repo/target/debug/deps/eden_wire-3817a825ae9cce71.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/status.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/libeden_wire-3817a825ae9cce71.rlib: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/status.rs crates/wire/src/value.rs

/root/repo/target/debug/deps/libeden_wire-3817a825ae9cce71.rmeta: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/image.rs crates/wire/src/message.rs crates/wire/src/status.rs crates/wire/src/value.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/image.rs:
crates/wire/src/message.rs:
crates/wire/src/status.rs:
crates/wire/src/value.rs:
