/root/repo/target/debug/deps/apps-300f06771a6f216a.d: crates/apps/tests/apps.rs Cargo.toml

/root/repo/target/debug/deps/libapps-300f06771a6f216a.rmeta: crates/apps/tests/apps.rs Cargo.toml

crates/apps/tests/apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
