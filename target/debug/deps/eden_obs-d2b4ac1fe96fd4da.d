/root/repo/target/debug/deps/eden_obs-d2b4ac1fe96fd4da.d: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

/root/repo/target/debug/deps/eden_obs-d2b4ac1fe96fd4da: crates/obs/src/lib.rs crates/obs/src/clock.rs crates/obs/src/hist.rs crates/obs/src/metric.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs crates/obs/src/trace.rs

crates/obs/src/lib.rs:
crates/obs/src/clock.rs:
crates/obs/src/hist.rs:
crates/obs/src/metric.rs:
crates/obs/src/recorder.rs:
crates/obs/src/registry.rs:
crates/obs/src/trace.rs:
