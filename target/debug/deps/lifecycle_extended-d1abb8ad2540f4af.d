/root/repo/target/debug/deps/lifecycle_extended-d1abb8ad2540f4af.d: crates/core/tests/lifecycle_extended.rs

/root/repo/target/debug/deps/lifecycle_extended-d1abb8ad2540f4af: crates/core/tests/lifecycle_extended.rs

crates/core/tests/lifecycle_extended.rs:
