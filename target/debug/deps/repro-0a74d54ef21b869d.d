/root/repo/target/debug/deps/repro-0a74d54ef21b869d.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-0a74d54ef21b869d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
