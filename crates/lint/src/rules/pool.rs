//! L1 `pool-discipline`: kernel threads come from the virtual-processor
//! pool; transport threads are named (`eden-mesh-*`, `eden-tcp-*` —
//! accept loops, the fixed `eden-tcp-rdr-*` reader pool, per-peer
//! writers) so flight-recorder dumps and leak hunts can attribute them.

use crate::lexer::{word_occurrences, SourceModel};
use crate::{Finding, Rule};

pub(crate) fn check(rel_path: &str, model: &SourceModel, out: &mut Vec<Finding>) {
    let in_core = rel_path.starts_with("crates/core/src/") && !rel_path.ends_with("vproc.rs");
    let in_transport = rel_path.starts_with("crates/transport/src/");
    if !in_core && !in_transport {
        return;
    }
    let mut sites: Vec<usize> = word_occurrences(&model.code, "spawn")
        .into_iter()
        .filter(|&at| {
            // `thread::spawn(` directly, or `.spawn(` completing a
            // `thread::Builder` chain within the preceding few lines.
            let before = &model.code[..at];
            if before.ends_with("thread::") {
                return true;
            }
            if before.ends_with('.') {
                let window_start = before.len().saturating_sub(300);
                return before[window_start..].contains("thread::Builder");
            }
            false
        })
        .collect();
    sites.dedup_by_key(|at| model.line_of(*at));
    for at in sites {
        let line = model.line_of(at);
        if model.is_test_line(line) {
            continue;
        }
        // In-lint allowlists, checked in a window around the spawn:
        // the kernel's two legitimate direct threads (the per-node
        // receive loop, named "eden-recv-<id>", and the stall watchdog,
        // named "eden-watchdog-<id>" — both must stay off the pool they
        // observe), and the transport's infrastructure threads, which
        // must carry an "eden-mesh-*" or "eden-tcp-*" name (accept
        // loops, readers, per-peer writers, the loopback delay pump).
        let lo = model.line_starts[line.saturating_sub(4).max(1) - 1];
        let hi = model
            .line_starts
            .get(line + 3)
            .copied()
            .unwrap_or(model.raw.len());
        let window = &model.raw[lo..hi];
        if rel_path.ends_with("node.rs")
            && (window.contains("eden-recv") || window.contains("eden-watchdog"))
        {
            continue;
        }
        if in_transport && (window.contains("eden-mesh-") || window.contains("eden-tcp-")) {
            continue;
        }
        let message = if in_transport {
            "direct thread spawn in eden-transport without an eden-mesh-*/eden-tcp-* \
             thread name; transport threads must be named for attribution"
        } else {
            "direct thread spawn in eden-core; kernel work must go through \
             VirtualProcessorPool::submit (allowlisted: vproc.rs workers, \
             the eden-recv loop, the eden-watchdog thread)"
        };
        out.push(Finding {
            rule: Rule::PoolDiscipline,
            file: rel_path.to_string(),
            line,
            message: message.to_string(),
            suppressed: false,
        });
    }
}
