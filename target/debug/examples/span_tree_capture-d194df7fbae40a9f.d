/root/repo/target/debug/examples/span_tree_capture-d194df7fbae40a9f.d: examples/span_tree_capture.rs

/root/repo/target/debug/examples/span_tree_capture-d194df7fbae40a9f: examples/span_tree_capture.rs

examples/span_tree_capture.rs:
