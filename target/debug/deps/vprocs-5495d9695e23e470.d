/root/repo/target/debug/deps/vprocs-5495d9695e23e470.d: crates/bench/benches/vprocs.rs Cargo.toml

/root/repo/target/debug/deps/libvprocs-5495d9695e23e470.rmeta: crates/bench/benches/vprocs.rs Cargo.toml

crates/bench/benches/vprocs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
