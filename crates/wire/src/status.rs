//! Invocation status words.
//!
//! §4.2: the target object "executes the request and responds with status
//! and return parameters". [`Status`] is that status word. Kernel-detected
//! failures (no such object, rights violation, timeout, …) and
//! type-manager-reported application errors share the one status channel,
//! exactly as the paper's `Returns (status)` sketch suggests.

use eden_capability::Rights;

use crate::codec::{CodecError, Reader, WireDecode, WireEncode, Writer};

/// The outcome of an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// The operation completed; results are valid.
    Ok,
    /// No object with the target name exists anywhere the kernel could find.
    NoSuchObject,
    /// The target's type defines no such operation.
    NoSuchOperation(String),
    /// The capability lacked rights the operation requires.
    RightsViolation {
        /// Rights the operation requires.
        required: Rights,
        /// Rights the presented capability carried.
        held: Rights,
    },
    /// The user-supplied timeout expired before a reply arrived (§4.2:
    /// "the invoker wishes to be notified if the invocation is not
    /// completed within some time limit").
    Timeout,
    /// The object crashed (§4.4) while the invocation was queued or
    /// in flight and could not be transparently recovered.
    ObjectCrashed,
    /// A mutating operation was attempted on a frozen object (§4.3).
    Frozen,
    /// Parameters did not match what the operation expects.
    TypeError(String),
    /// The node believed to hold the object could not be reached.
    NodeUnreachable,
    /// The object was destroyed; its name will never be reused.
    Destroyed,
    /// An error reported by the type manager itself.
    AppError {
        /// A type-manager-defined code.
        code: i32,
        /// Human-readable detail.
        message: String,
    },
    /// The serving node's virtual-processor pool is saturated: its task
    /// queue is at capacity and the invocation was shed rather than
    /// queued. Backpressure, not failure — the caller may retry.
    Overloaded,
}

impl Status {
    /// Tests whether the invocation succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, Status::Ok)
    }

    /// A stable short label for metrics and table output.
    pub fn label(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NoSuchObject => "no-such-object",
            Status::NoSuchOperation(_) => "no-such-operation",
            Status::RightsViolation { .. } => "rights-violation",
            Status::Timeout => "timeout",
            Status::ObjectCrashed => "object-crashed",
            Status::Frozen => "frozen",
            Status::TypeError(_) => "type-error",
            Status::NodeUnreachable => "node-unreachable",
            Status::Destroyed => "destroyed",
            Status::AppError { .. } => "app-error",
            Status::Overloaded => "overloaded",
        }
    }
}

impl core::fmt::Display for Status {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Status::NoSuchOperation(op) => write!(f, "no such operation: {op}"),
            Status::RightsViolation { required, held } => {
                write!(f, "rights violation: required {required:?}, held {held:?}")
            }
            Status::TypeError(msg) => write!(f, "type error: {msg}"),
            Status::AppError { code, message } => write!(f, "application error {code}: {message}"),
            other => f.write_str(other.label()),
        }
    }
}

const TAG_OK: u8 = 0;
const TAG_NO_OBJECT: u8 = 1;
const TAG_NO_OPERATION: u8 = 2;
const TAG_RIGHTS: u8 = 3;
const TAG_TIMEOUT: u8 = 4;
const TAG_CRASHED: u8 = 5;
const TAG_FROZEN: u8 = 6;
const TAG_TYPE_ERROR: u8 = 7;
const TAG_UNREACHABLE: u8 = 8;
const TAG_DESTROYED: u8 = 9;
const TAG_APP: u8 = 10;
const TAG_OVERLOADED: u8 = 11;

impl WireEncode for Status {
    fn encode(&self, w: &mut Writer) {
        match self {
            Status::Ok => w.put_u8(TAG_OK),
            Status::NoSuchObject => w.put_u8(TAG_NO_OBJECT),
            Status::NoSuchOperation(op) => {
                w.put_u8(TAG_NO_OPERATION);
                w.put_str(op);
            }
            Status::RightsViolation { required, held } => {
                w.put_u8(TAG_RIGHTS);
                required.encode(w);
                held.encode(w);
            }
            Status::Timeout => w.put_u8(TAG_TIMEOUT),
            Status::ObjectCrashed => w.put_u8(TAG_CRASHED),
            Status::Frozen => w.put_u8(TAG_FROZEN),
            Status::TypeError(msg) => {
                w.put_u8(TAG_TYPE_ERROR);
                w.put_str(msg);
            }
            Status::NodeUnreachable => w.put_u8(TAG_UNREACHABLE),
            Status::Destroyed => w.put_u8(TAG_DESTROYED),
            Status::AppError { code, message } => {
                w.put_u8(TAG_APP);
                w.put_u32(*code as u32);
                w.put_str(message);
            }
            Status::Overloaded => w.put_u8(TAG_OVERLOADED),
        }
    }
}

impl WireDecode for Status {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_OK => Ok(Status::Ok),
            TAG_NO_OBJECT => Ok(Status::NoSuchObject),
            TAG_NO_OPERATION => Ok(Status::NoSuchOperation(r.get_str()?)),
            TAG_RIGHTS => Ok(Status::RightsViolation {
                required: Rights::decode(r)?,
                held: Rights::decode(r)?,
            }),
            TAG_TIMEOUT => Ok(Status::Timeout),
            TAG_CRASHED => Ok(Status::ObjectCrashed),
            TAG_FROZEN => Ok(Status::Frozen),
            TAG_TYPE_ERROR => Ok(Status::TypeError(r.get_str()?)),
            TAG_UNREACHABLE => Ok(Status::NodeUnreachable),
            TAG_DESTROYED => Ok(Status::Destroyed),
            TAG_APP => Ok(Status::AppError {
                code: r.get_u32()? as i32,
                message: r.get_str()?,
            }),
            TAG_OVERLOADED => Ok(Status::Overloaded),
            tag => Err(CodecError::BadTag {
                what: "Status",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn any_status() -> impl Strategy<Value = Status> {
        prop_oneof![
            Just(Status::Ok),
            Just(Status::NoSuchObject),
            "[a-z]{0,12}".prop_map(Status::NoSuchOperation),
            (0u32.., 0u32..).prop_map(|(r, h)| Status::RightsViolation {
                required: Rights::from_bits(r),
                held: Rights::from_bits(h),
            }),
            Just(Status::Timeout),
            Just(Status::ObjectCrashed),
            Just(Status::Frozen),
            ".{0,32}".prop_map(Status::TypeError),
            Just(Status::NodeUnreachable),
            Just(Status::Destroyed),
            (any::<i32>(), ".{0,32}")
                .prop_map(|(code, message)| Status::AppError { code, message }),
            Just(Status::Overloaded),
        ]
    }

    proptest! {
        #[test]
        fn status_round_trips(s in any_status()) {
            prop_assert_eq!(Status::decode_from_bytes(&s.encode_to_bytes()).unwrap(), s);
        }
    }

    #[test]
    fn only_ok_is_ok() {
        assert!(Status::Ok.is_ok());
        assert!(!Status::Timeout.is_ok());
        assert!(!Status::AppError {
            code: 0,
            message: String::new()
        }
        .is_ok());
    }

    #[test]
    fn display_mentions_operation_name() {
        let s = format!("{}", Status::NoSuchOperation("put".into()));
        assert!(s.contains("put"));
    }

    #[test]
    fn labels_are_distinct_for_distinct_variants() {
        let variants = [
            Status::Ok,
            Status::NoSuchObject,
            Status::NoSuchOperation(String::new()),
            Status::Timeout,
            Status::ObjectCrashed,
            Status::Frozen,
            Status::NodeUnreachable,
            Status::Destroyed,
            Status::Overloaded,
        ];
        let labels: std::collections::HashSet<_> = variants.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), variants.len());
    }
}
