//! F1 — Figure 1 as a measured system: the five-node 1981 prototype.
//!
//! Five node machines on a LAN-shaped network, node 4 acting as the
//! file server; a ring of cross-node invocations plus EFS traffic, with
//! the per-node kernel counters as the "figure".

use eden_efs::Efs;
use eden_transport::{LatencyModel, MeshOptions};
use eden_wire::Value;

use crate::table::Table;
use crate::types::{with_bench_types, EchoType};

/// Runs F1 and returns the table.
pub fn run() -> Table {
    let cluster = with_bench_types(eden_apps::with_apps(
        eden_kernel::Cluster::builder().nodes(5).mesh(MeshOptions {
            latency: LatencyModel::lan_10mbps(),
            loss_probability: 0.0,
            seed: 1981,
        }),
    ))
    .build();

    // The file server hosts EFS; each workstation writes home files.
    let efs = Efs::format(cluster.node(4).clone()).expect("format EFS");
    for i in 0..4 {
        let ws = Efs::mount(cluster.node(i).clone(), efs.root());
        ws.write(&format!("/home/user{i}/profile"), &vec![b'x'; 512])
            .expect("home write");
    }

    // A ring of echo objects: node i hosts one, node (i+1)%5 chats with it.
    let caps: Vec<_> = (0..5)
        .map(|i| {
            cluster
                .node(i)
                .create_object(EchoType::NAME, &[])
                .expect("create echo")
        })
        .collect();
    for round in 0..10u64 {
        for (i, &cap) in caps.iter().enumerate() {
            cluster
                .node((i + 1) % 5)
                .invoke(cap, "echo", &[Value::U64(round)])
                .expect("ring echo");
        }
    }

    let mut t = Table::new(
        "F1 — the five-node prototype under ring + EFS load (per-node kernel counters)",
        &[
            "node",
            "role",
            "local inv",
            "remote served",
            "remote sent",
            "frames sent",
            "bytes sent",
        ],
    );
    for (i, node) in cluster.nodes().iter().enumerate() {
        let m = node.metrics();
        let n = node.transport_stats();
        t.row(vec![
            format!("N{i}"),
            if i == 4 {
                "file server".into()
            } else {
                "workstation".into()
            },
            m.local_invocations.to_string(),
            m.remote_invocations_served.to_string(),
            m.remote_invocations_sent.to_string(),
            n.frames_sent.to_string(),
            n.bytes_sent.to_string(),
        ]);
    }
    t.note("the file server serves EFS traffic; workstations serve + send the ring — every node is both client and server");
    cluster.shutdown();
    t
}
