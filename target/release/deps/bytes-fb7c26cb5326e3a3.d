/root/repo/target/release/deps/bytes-fb7c26cb5326e3a3.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-fb7c26cb5326e3a3.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-fb7c26cb5326e3a3.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
