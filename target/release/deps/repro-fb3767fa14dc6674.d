/root/repo/target/release/deps/repro-fb3767fa14dc6674.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-fb3767fa14dc6674: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
