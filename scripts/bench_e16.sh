#!/usr/bin/env bash
# Runs the E16 pipelined-invocation experiment and archives its
# machine-readable artifact. Usage: scripts/bench_e16.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -p eden-bench --bin repro --release -- e16

artifact=target/artifacts/BENCH_E16.json
if [[ ! -f "$artifact" ]]; then
    echo "FAIL: $artifact was not produced" >&2
    exit 1
fi
python3 -m json.tool "$artifact" >/dev/null
echo "OK: $artifact is valid JSON:"
cat "$artifact"
