/root/repo/target/release/deps/eden-e94eddbf92bacafc.d: src/lib.rs

/root/repo/target/release/deps/libeden-e94eddbf92bacafc.rlib: src/lib.rs

/root/repo/target/release/deps/libeden-e94eddbf92bacafc.rmeta: src/lib.rs

src/lib.rs:
