//! The per-function analysis model the graph rules are built on.
//!
//! Each scanned file is parsed (with the [`lexer`](crate::lexer)'s
//! offset-preserving views) into a [`FileModel`]: function spans,
//! lock-guard acquisition sites with the locked *field's* name and an
//! approximate hold span, direct intra-crate call sites, blocking-call
//! sites, pool-submit closures, plus the wire-schema inventory (enum
//! declarations, `TAG_*` constants, `WireEncode`/`WireDecode` impl
//! blocks and `*_to_value`/`*_from_value` codec functions). The
//! [`Workspace`] ties the files together so the graph rules
//! (lock-order, blocking-discipline, wire-schema-drift) can reason
//! across files.
//!
//! ## Soundness caveats (by design — this is a linter, not a verifier)
//!
//! * Lock identity is the *declared field name* (qualified by the
//!   declaring file's stem), resolved through one level of local
//!   `let`-alias; locks reached through unresolvable aliases are
//!   dropped (under-approximation).
//! * Guard hold spans are lexical: a bound guard is held to the end of
//!   its enclosing block (or an explicit `drop(guard)`), a temporary
//!   guard to the end of its statement — including an attached
//!   `if`/`while`/`match` block, matching Rust's scrutinee temporary
//!   extension (over-approximation).
//! * The call graph is name-based and intra-crate: a call site
//!   resolves to *every* same-crate function with that name
//!   (over-approximation), and cross-crate calls are invisible
//!   (under-approximation).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::lexer::{
    ident_at, ident_before, matching_brace, matching_paren_fwd, word_occurrences, SourceModel,
};

/// Methods that acquire a lock guard when called with no arguments.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Blocking operations a pool worker must wrap in `blocking()`.
pub(crate) const BLOCKING_METHODS: [&str; 8] = [
    "recv_timeout",
    "wait",
    "wait_timeout",
    "sleep",
    "fsync",
    "connect",
    "dial",
    "join",
];

/// Call names that never resolve to interesting first-party functions
/// (std/collection vocabulary that would otherwise alias into the
/// approximate call graph and fabricate edges).
const CALL_DENYLIST: [&str; 25] = [
    "new",
    "clone",
    "default",
    "drop",
    "from",
    "into",
    "get",
    "insert",
    "remove",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "push",
    "pop",
    "iter",
    "next",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "min",
    "max",
    "to_string",
    "send",
];

const KEYWORDS: [&str; 26] = [
    "if", "else", "while", "for", "match", "loop", "return", "fn", "move", "in", "as", "let",
    "unsafe", "ref", "mut", "break", "continue", "where", "impl", "use", "pub", "crate", "super",
    "dyn", "box", "await",
];

/// One lock-guard acquisition: `self.….<field>.lock()/.read()/.write()`.
#[derive(Debug, Clone)]
pub(crate) struct LockSite {
    /// The locked field's declared name (post alias resolution).
    pub(crate) field: String,
    /// Byte offset of the acquisition method name.
    pub(crate) at: usize,
    /// Approximate end of the guard's hold span (byte offset).
    pub(crate) hold_end: usize,
}

/// One direct call site `name(…)` inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    pub(crate) callee: String,
    pub(crate) at: usize,
    /// Inside a `blocking(…)` guard argument (spare-injection scope).
    pub(crate) guarded: bool,
    /// Inside a `submit(…)`/`submit_traced(…)` closure argument.
    pub(crate) in_submit: bool,
    /// Inside a `spawn(…)` closure argument (runs on a fresh thread).
    pub(crate) in_spawn: bool,
}

/// One blocking-operation site.
#[derive(Debug, Clone)]
pub(crate) struct BlockSite {
    pub(crate) what: String,
    pub(crate) at: usize,
    pub(crate) guarded: bool,
    pub(crate) in_submit: bool,
    pub(crate) in_spawn: bool,
}

/// One function's analysis model.
#[derive(Debug, Clone)]
pub(crate) struct FnModel {
    pub(crate) name: String,
    /// Byte span of the body (offsets of `{` and its match).
    pub(crate) body: (usize, usize),
    pub(crate) locks: Vec<LockSite>,
    pub(crate) calls: Vec<CallSite>,
    pub(crate) blocking: Vec<BlockSite>,
}

/// An `enum` declaration.
#[derive(Debug, Clone)]
pub(crate) struct EnumDef {
    pub(crate) name: String,
    pub(crate) variants: Vec<String>,
}

/// A `const TAG_*: u8 = N;` wire-tag constant declaration. Encode/
/// decode uses are counted workspace-wide by the wire-drift rule.
#[derive(Debug, Clone)]
pub(crate) struct TagConst {
    pub(crate) name: String,
    pub(crate) value: u64,
    pub(crate) line: usize,
}

/// One `Enum::Variant` reference inside a codec context.
#[derive(Debug, Clone)]
pub(crate) struct VariantRef {
    pub(crate) enum_name: String,
    pub(crate) variant: String,
    pub(crate) line: usize,
}

/// One `impl WireEncode/WireDecode for E` block's variant references.
#[derive(Debug, Clone)]
pub(crate) struct CodecImpl {
    pub(crate) enum_name: String,
    pub(crate) encode: bool,
    pub(crate) line: usize,
    pub(crate) refs: Vec<VariantRef>,
}

/// One `*_to_value` / `*_from_value` codec function's variant references.
#[derive(Debug, Clone)]
pub(crate) struct CodecFn {
    pub(crate) encode: bool,
    pub(crate) refs: Vec<VariantRef>,
}

/// One file's full analysis model.
pub(crate) struct FileModel {
    pub(crate) rel_path: String,
    pub(crate) stem: String,
    /// `crates/<key>/src/…` → `<key>`; top-level `src/…` → `root`.
    pub(crate) crate_key: String,
    pub(crate) model: SourceModel,
    pub(crate) fns: Vec<FnModel>,
    /// Field/static names declared as `Mutex<…>`/`RwLock<…>` here.
    pub(crate) lock_fields: Vec<String>,
    pub(crate) enums: Vec<EnumDef>,
    pub(crate) tags: Vec<TagConst>,
    pub(crate) impls: Vec<CodecImpl>,
    pub(crate) codec_fns: Vec<CodecFn>,
}

/// The workspace-wide model: every scanned file, plus the global lock
/// declaration map the lock-identity resolution uses.
pub(crate) struct Workspace {
    pub(crate) files: Vec<FileModel>,
    /// lock field name → stems of the files declaring it.
    pub(crate) lock_decls: BTreeMap<String, BTreeSet<String>>,
}

impl Workspace {
    pub(crate) fn build(files: &[(String, String)]) -> Workspace {
        // Pass 1: lex + declared lock fields (needed for alias
        // resolution before function models are built).
        let mut lexed: Vec<(String, SourceModel, Vec<String>)> = files
            .iter()
            .map(|(rel, src)| {
                let model = SourceModel::new(src);
                let locks = declared_lock_fields(&model);
                (rel.clone(), model, locks)
            })
            .collect();
        let mut lock_decls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (rel, _, locks) in &lexed {
            for f in locks {
                lock_decls
                    .entry(f.clone())
                    .or_default()
                    .insert(stem_of(rel));
            }
        }
        let all_lock_fields: BTreeSet<String> = lock_decls.keys().cloned().collect();

        // Pass 2: per-file function + wire models.
        let file_models = lexed
            .drain(..)
            .map(|(rel, model, lock_fields)| {
                let fns = extract_fns(&model, &all_lock_fields);
                let enums = extract_enums(&model);
                let tags = extract_tags(&model);
                let impls = extract_codec_impls(&model);
                let codec_fns = extract_codec_fns(&model, &fns);
                FileModel {
                    stem: stem_of(&rel),
                    crate_key: crate_key_of(&rel),
                    rel_path: rel,
                    model,
                    fns,
                    lock_fields,
                    enums,
                    tags,
                    impls,
                    codec_fns,
                }
            })
            .collect();
        Workspace {
            files: file_models,
            lock_decls,
        }
    }

    /// The canonical identity of a lock field acquired in `file`:
    /// `<declaring-file-stem>.<field>`. A field declared in the
    /// acquiring file resolves locally; otherwise to its unique
    /// declaring file; ambiguous fields attribute to the acquirer.
    pub(crate) fn lock_id(&self, file: &FileModel, field: &str) -> String {
        if file.lock_fields.iter().any(|f| f == field) {
            return format!("{}.{field}", file.stem);
        }
        match self.lock_decls.get(field) {
            Some(stems) if stems.len() == 1 => {
                format!("{}.{field}", stems.iter().next().expect("non-empty"))
            }
            _ => format!("{}.{field}", file.stem),
        }
    }

    /// Enum declarations across the whole workspace, name → variants.
    pub(crate) fn enum_map(&self) -> BTreeMap<&str, &EnumDef> {
        let mut map = BTreeMap::new();
        for file in &self.files {
            for e in &file.enums {
                map.entry(e.name.as_str()).or_insert(e);
            }
        }
        map
    }
}

pub(crate) fn stem_of(rel_path: &str) -> String {
    rel_path
        .rsplit('/')
        .next()
        .unwrap_or(rel_path)
        .trim_end_matches(".rs")
        .to_string()
}

pub(crate) fn crate_key_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "root".to_string(),
    }
}

/// Field/static names declared with a `Mutex<…>` / `RwLock<…>` type.
fn declared_lock_fields(model: &SourceModel) -> Vec<String> {
    let mut out = Vec::new();
    for ty in ["Mutex", "RwLock"] {
        for at in word_occurrences(&model.code, ty) {
            if model.code[at..].as_bytes().get(ty.len()) != Some(&b'<') {
                continue;
            }
            let line = model.line_of(at);
            if model.is_test_line(line) {
                continue;
            }
            // `name: Mutex<…>` / `name: Option<Mutex<…>>` /
            // `static NAME: Mutex<…>` — walk back over the type prefix
            // to the owning `:`, then take the identifier before it.
            let bytes = model.code.as_bytes();
            let mut j = at;
            let mut colon = None;
            while j > 0 {
                let b = bytes[j - 1];
                if b == b':' {
                    if j >= 2 && bytes[j - 2] == b':' {
                        break; // `Mutex::…` path, not a declaration
                    }
                    colon = Some(j - 1);
                    break;
                }
                if b.is_ascii_alphanumeric()
                    || matches!(b, b'_' | b'<' | b'>' | b' ' | b'\t' | b'&')
                {
                    j -= 1;
                } else {
                    break;
                }
            }
            let Some(name) = colon.and_then(|c| crate::lexer::ident_before(&model.code, c)) else {
                continue;
            };
            if !name.is_empty()
                && !name.bytes().next().is_some_and(|b| b.is_ascii_digit())
                && !out.contains(&name.to_string())
            {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Extracts every function with a body, then attributes lock, call and
/// blocking sites to the innermost containing function.
fn extract_fns(model: &SourceModel, all_lock_fields: &BTreeSet<String>) -> Vec<FnModel> {
    let code = &model.code;
    let mut fns: Vec<FnModel> = Vec::new();
    for at in word_occurrences(code, "fn") {
        if model.is_test_line(model.line_of(at)) {
            continue;
        }
        let Some(name) = ident_at(code, skip_ws(code, at + 2)) else {
            continue;
        };
        let name_end = skip_ws(code, at + 2) + name.len();
        let Some(params_open) = code[name_end..].find('(').map(|p| name_end + p) else {
            continue;
        };
        let Some(params_close) = matching_paren_fwd(code, params_open) else {
            continue;
        };
        // Body `{` before any `;` (a `;` first means trait/extern decl).
        let mut body_open = None;
        let mut depth = 0i32;
        for (i, b) in code.bytes().enumerate().skip(params_close + 1) {
            match b {
                b'(' | b'[' | b'<' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth <= 0 => {
                    body_open = Some(i);
                    break;
                }
                b';' if depth <= 0 => break,
                b'>' => depth -= i32::from(code.as_bytes().get(i.wrapping_sub(1)) != Some(&b'-')),
                _ => {}
            }
        }
        let Some(open) = body_open else { continue };
        let Some(close) = matching_brace(code, open) else {
            continue;
        };
        fns.push(FnModel {
            name: name.to_string(),
            body: (open, close),
            locks: Vec::new(),
            calls: Vec::new(),
            blocking: Vec::new(),
        });
    }

    // Innermost-function attribution helper.
    let innermost = |fns: &Vec<FnModel>, at: usize| -> Option<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, f)| f.body.0 < at && at < f.body.1)
            .min_by_key(|(_, f)| f.body.1 - f.body.0)
            .map(|(i, _)| i)
    };

    // Guard-argument spans: `blocking(…)`, `submit(…)`/`submit_traced(…)`,
    // and `spawn(…)` (whose closure runs later, on a fresh thread, with
    // none of the spawner's guards held).
    let blocking_spans = call_arg_spans(code, &["blocking"]);
    let submit_spans = call_arg_spans(code, &["submit", "submit_traced"]);
    let spawn_spans = call_arg_spans(code, &["spawn"]);
    let covered =
        |spans: &Vec<(usize, usize)>, at: usize| spans.iter().any(|&(s, e)| s < at && at < e);

    // Per-function alias maps (local `let x = …<lock field>…` bindings).
    let aliases: Vec<HashMap<String, String>> = fns
        .iter()
        .map(|f| collect_aliases(code, f.body, all_lock_fields))
        .collect();

    // Lock acquisition sites.
    for method in LOCK_METHODS {
        for at in word_occurrences(code, method) {
            if !code[at + method.len()..].starts_with("()") {
                continue;
            }
            let Some(dot) = at.checked_sub(1).filter(|&d| code.as_bytes()[d] == b'.') else {
                continue;
            };
            if model.is_test_line(model.line_of(at)) {
                continue;
            }
            let Some(recv) = ident_before(code, dot) else {
                continue;
            };
            let Some(idx) = innermost(&fns, at) else {
                continue;
            };
            let field = if all_lock_fields.contains(recv) {
                recv.to_string()
            } else if let Some(f) = aliases[idx].get(recv) {
                f.clone()
            } else {
                continue; // unresolvable receiver: dropped (caveat above)
            };
            let body_end = fns[idx].body.1;
            let hold_end = hold_span_end(code, at, method, body_end);
            fns[idx].locks.push(LockSite {
                field,
                at,
                hold_end,
            });
        }
    }

    // Call and blocking sites: every `ident(`.
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        let Some(name) = ident_before(code, i) else {
            continue;
        };
        if model.is_test_line(model.line_of(i)) {
            continue;
        }
        let Some(idx) = innermost(&fns, i) else {
            continue;
        };
        let guarded = covered(&blocking_spans, i);
        let in_submit = covered(&submit_spans, i);
        let in_spawn = covered(&spawn_spans, i);
        if BLOCKING_METHODS.contains(&name) {
            // Only `.wait(…)` / `::sleep(…)`-shaped sites: a leading
            // `.`/`::` distinguishes the operation from local fns that
            // merely share the word.
            let at = i - name.len();
            let lead = code[..at].trim_end();
            if lead.ends_with('.') || lead.ends_with("::") {
                fns[idx].blocking.push(BlockSite {
                    what: name.to_string(),
                    at,
                    guarded,
                    in_submit,
                    in_spawn,
                });
                continue;
            }
        }
        if name.bytes().next().is_some_and(|b| b.is_ascii_uppercase())
            || name.bytes().all(|b| b.is_ascii_digit())
            || KEYWORDS.contains(&name)
            || CALL_DENYLIST.contains(&name)
            || LOCK_METHODS.contains(&name)
            || BLOCKING_METHODS.contains(&name)
        {
            continue;
        }
        fns[idx].calls.push(CallSite {
            callee: name.to_string(),
            at: i - name.len(),
            guarded,
            in_submit,
            in_spawn,
        });
    }
    for f in &mut fns {
        f.locks.sort_by_key(|l| l.at);
        f.calls.sort_by_key(|c| c.at);
        f.blocking.sort_by_key(|b| b.at);
    }
    fns
}

fn skip_ws(code: &str, mut at: usize) -> usize {
    let bytes = code.as_bytes();
    while at < bytes.len() && bytes[at].is_ascii_whitespace() {
        at += 1;
    }
    at
}

/// Argument spans `(start, end)` of calls to any of `names`.
fn call_arg_spans(code: &str, names: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for name in names {
        for at in word_occurrences(code, name) {
            let open = at + name.len();
            if code.as_bytes().get(open) != Some(&b'(') {
                continue;
            }
            if let Some(close) = matching_paren_fwd(code, open) {
                spans.push((open, close));
            }
        }
    }
    spans
}

/// Local `let <x> = …;` aliases whose initializer mentions exactly one
/// known lock field: `let dir = self.inner.directory.as_ref()…` lets a
/// later `dir.lock()` resolve to `directory`.
fn collect_aliases(
    code: &str,
    body: (usize, usize),
    all_lock_fields: &BTreeSet<String>,
) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let slice = &code[body.0..body.1];
    for rel in word_occurrences(slice, "let") {
        let at = body.0 + rel;
        // Pattern between `let` and the first bare `=`.
        let bytes = code.as_bytes();
        let mut i = at + 3;
        let mut eq = None;
        while i < body.1 {
            match bytes[i] {
                b'=' if bytes.get(i + 1) != Some(&b'=') && bytes.get(i + 1) != Some(&b'>') => {
                    eq = Some(i);
                    break;
                }
                b';' | b'{' => break,
                _ => {}
            }
            i += 1;
        }
        let Some(eq) = eq else { continue };
        let pattern = &code[at + 3..eq];
        let binds: Vec<&str> = pattern
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .filter(|w| {
                !w.is_empty()
                    && !matches!(*w, "mut" | "ref" | "Some" | "Ok" | "Err" | "None" | "_")
                    && w.bytes().next().is_some_and(|b| b.is_ascii_lowercase())
            })
            .collect();
        if binds.len() != 1 {
            continue;
        }
        // Initializer: `=` to the first `;` or `{` at relative depth 0.
        let mut depth = 0i32;
        let mut end = body.1;
        let mut j = eq + 1;
        while j < body.1 {
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b';' | b'{' if depth <= 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let rhs = &code[eq + 1..end];
        let fields: Vec<&String> = all_lock_fields
            .iter()
            .filter(|f| !word_occurrences(rhs, f).is_empty())
            .collect();
        if fields.len() == 1 && binds[0] != fields[0].as_str() {
            out.insert(binds[0].to_string(), fields[0].clone());
        }
    }
    out
}

/// Approximate end of a guard's hold span.
///
/// A *bound* guard (`let g = x.lock();`) is held to the end of its
/// enclosing block, cut short by an explicit `drop(g)`. A *temporary*
/// (`x.lock().push(…)`, `match x.lock().get(…) { … }`) is held to the
/// end of its statement, including an attached block — mirroring
/// scrutinee temporary extension. Exception: in a plain `if`/`while`
/// condition (no `let`), Rust drops condition temporaries *before* the
/// branch body runs, so the hold ends at the opening brace.
fn hold_span_end(code: &str, at: usize, method: &str, body_end: usize) -> usize {
    let bytes = code.as_bytes();
    let call_close = at + method.len() + 1; // offset of `)`

    // Statement start: nearest `;`, `{` or `}` behind the site.
    let mut stmt_start = at;
    while stmt_start > 0 && !matches!(bytes[stmt_start - 1], b';' | b'{' | b'}') {
        stmt_start -= 1;
    }
    let stmt_head = code[stmt_start..at].trim_start();

    // Bound guard: `let <ident> = … .lock();` with the call ending the
    // initializer expression.
    let after = skip_ws(code, call_close + 1);
    if bytes.get(after) == Some(&b';') && stmt_head.starts_with("let ") {
        let pat = stmt_head[4..].split('=').next().unwrap_or("");
        let name = pat.trim().trim_start_matches("mut ").trim();
        if !name.is_empty() && name.bytes().all(crate::lexer::is_ident_char) {
            // Enclosing block: innermost `{` whose match is past the site.
            let block_end = enclosing_block_end(code, at, body_end);
            // An explicit drop(name) ends the hold early.
            for d in word_occurrences(&code[at..block_end], "drop") {
                let dat = at + d + 4;
                if bytes.get(dat) == Some(&b'(') {
                    if let Some(arg) = ident_at(code, skip_ws(code, dat + 1)) {
                        if arg == name {
                            return at + d;
                        }
                    }
                }
            }
            return block_end;
        }
    }

    // Temporary: scan forward to the end of the statement.
    let cond_stmt = is_condition_head(stmt_head);
    let mut depth = 0i32;
    let mut i = call_close + 1;
    while i < body_end {
        match bytes[i] {
            b'{' if depth == 0 && cond_stmt => return i,
            // A plain `=` at statement level means the guard sits in the
            // assignment's *place* expression; Rust evaluates the value
            // operand first, so nothing to the right runs under the lock.
            b'=' if depth == 0
                && !matches!(bytes.get(i + 1), Some(b'=' | b'>'))
                && i > 0
                && !matches!(
                    bytes[i - 1],
                    b'=' | b'!'
                        | b'<'
                        | b'>'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                ) =>
            {
                return i;
            }
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
                if depth == 0 {
                    // A block closed at statement level: the attached
                    // `if`/`match` body ends unless an `else` chains on.
                    let next = skip_ws(code, i + 1);
                    if ident_at(code, next) != Some("else") {
                        return i;
                    }
                }
            }
            b';' if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body_end
}

/// Whether a statement head is a plain `if`/`while` condition (not
/// `if let`/`while let`, whose scrutinee temporaries extend over the
/// body).
fn is_condition_head(head: &str) -> bool {
    let h = head.trim_start();
    let h = h.strip_prefix("else").map(str::trim_start).unwrap_or(h);
    for kw in ["if", "while"] {
        if let Some(rest) = h.strip_prefix(kw) {
            if rest.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
                continue;
            }
            return !rest.trim_start().starts_with("let ");
        }
    }
    false
}

/// End offset of the innermost `{…}` block containing `at`.
fn enclosing_block_end(code: &str, at: usize, body_end: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut i = at;
    while i < body_end {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    body_end
}

// ================= Wire-schema inventory =================

fn extract_enums(model: &SourceModel) -> Vec<EnumDef> {
    let code = &model.code;
    let mut out = Vec::new();
    for at in word_occurrences(code, "enum") {
        if model.is_test_line(model.line_of(at)) {
            continue;
        }
        let Some(name) = ident_at(code, skip_ws(code, at + 4)) else {
            continue;
        };
        if !name.bytes().next().is_some_and(|b| b.is_ascii_uppercase()) {
            continue;
        }
        let Some(open) = code[at..].find('{').map(|p| at + p) else {
            continue;
        };
        // Generic enums (`enum E<T> {`) and where-clauses keep the `{`
        // on the decl; a `;` first means this was `use …::enum` noise.
        if code[at..open].contains(';') {
            continue;
        }
        let Some(close) = matching_brace(code, open) else {
            continue;
        };
        let body = &code[open + 1..close];
        let mut variants = Vec::new();
        let bytes = body.as_bytes();
        let mut depth = 0i32;
        let mut expect_variant = true;
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'{' | b'(' | b'[' | b'<' => depth += 1,
                b'}' | b')' | b']' | b'>' => depth -= 1,
                b',' if depth == 0 => expect_variant = true,
                b'#' => {
                    // Skip attribute groups `#[…]`.
                    if bytes.get(i + 1) == Some(&b'[') {
                        let mut d = 0i32;
                        let mut j = i + 1;
                        while j < bytes.len() {
                            match bytes[j] {
                                b'[' => d += 1,
                                b']' => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        i = j;
                    }
                }
                b if depth == 0 && expect_variant && b.is_ascii_uppercase() => {
                    if let Some(v) = ident_at(body, i) {
                        variants.push(v.to_string());
                        i += v.len();
                        expect_variant = false;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out.push(EnumDef {
            name: name.to_string(),
            variants,
        });
    }
    out
}

fn extract_tags(model: &SourceModel) -> Vec<TagConst> {
    let code = &model.code;
    let mut out: Vec<TagConst> = Vec::new();
    for at in word_occurrences(code, "const") {
        if model.is_test_line(model.line_of(at)) {
            continue;
        }
        let Some(name) = ident_at(code, skip_ws(code, at + 5)) else {
            continue;
        };
        if !name.starts_with("TAG_") {
            continue;
        }
        let line_code = model.code_line(model.line_of(at));
        let Some(value) = line_code
            .split('=')
            .nth(1)
            .and_then(|v| v.trim().trim_end_matches(';').trim().parse::<u64>().ok())
        else {
            continue;
        };
        out.push(TagConst {
            name: name.to_string(),
            value,
            line: model.line_of(at),
        });
    }
    out
}

/// `Enum::Variant` references within `span` (uppercase enum name,
/// uppercase variant — module paths and assoc fns stay out).
fn variant_refs(model: &SourceModel, span: (usize, usize)) -> Vec<VariantRef> {
    let code = &model.code;
    let slice = &code[span.0..span.1];
    let bytes = slice.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        if bytes[i] == b':' && bytes[i + 1] == b':' {
            let Some(enum_name) = ident_before(slice, i) else {
                i += 2;
                continue;
            };
            let variant_at = skip_ws(slice, i + 2);
            let Some(variant) = ident_at(slice, variant_at) else {
                i += 2;
                continue;
            };
            let e_upper = enum_name
                .bytes()
                .next()
                .is_some_and(|b| b.is_ascii_uppercase());
            let v_upper = variant
                .bytes()
                .next()
                .is_some_and(|b| b.is_ascii_uppercase());
            // Exclude deeper paths (`a::b::c`) on the variant side.
            let after = variant_at + variant.len();
            let deeper = slice[after..].trim_start().starts_with("::");
            if e_upper && v_upper && !deeper {
                out.push(VariantRef {
                    enum_name: enum_name.to_string(),
                    variant: variant.to_string(),
                    line: model.line_of(span.0 + i),
                });
            }
            i = variant_at + variant.len();
        } else {
            i += 1;
        }
    }
    out
}

fn extract_codec_impls(model: &SourceModel) -> Vec<CodecImpl> {
    let code = &model.code;
    let mut out = Vec::new();
    for at in word_occurrences(code, "impl") {
        if model.is_test_line(model.line_of(at)) {
            continue;
        }
        let Some(open) = code[at..].find('{').map(|p| at + p) else {
            continue;
        };
        let header = &code[at..open];
        if header.contains(';') {
            continue;
        }
        let encode = header.contains("WireEncode for");
        let decode = header.contains("WireDecode for");
        if !encode && !decode {
            continue;
        }
        let Some(target) = header.split("for").nth(1) else {
            continue;
        };
        let target = target.trim();
        let Some(enum_name) = ident_at(target, 0) else {
            continue;
        };
        let Some(close) = matching_brace(code, open) else {
            continue;
        };
        out.push(CodecImpl {
            enum_name: enum_name.to_string(),
            encode,
            line: model.line_of(at),
            refs: variant_refs(model, (open, close)),
        });
    }
    out
}

fn extract_codec_fns(model: &SourceModel, fns: &[FnModel]) -> Vec<CodecFn> {
    fns.iter()
        .filter_map(|f| {
            let encode = f.name.ends_with("to_value");
            let decode = f.name.ends_with("from_value");
            if !encode && !decode {
                return None;
            }
            Some(CodecFn {
                encode,
                refs: variant_refs(model, f.body),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::build(&[("crates/core/src/x.rs".to_string(), src.to_string())])
    }

    #[test]
    fn bound_guard_holds_to_block_end_and_drop_cuts_it() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) {\n    let g = self.a.lock();\n    self.b.lock();\n    drop(g);\n    self.b.lock();\n}\n}\n";
        let w = ws(src);
        let f = &w.files[0].fns[0];
        assert_eq!(f.locks.len(), 3);
        let a = &f.locks[0];
        assert_eq!(a.field, "a");
        // `a` covers the first b acquisition but not the post-drop one.
        assert!(f.locks[1].at < a.hold_end, "{a:?} vs {:?}", f.locks[1]);
        assert!(f.locks[2].at > a.hold_end);
    }

    #[test]
    fn temporary_guard_ends_with_its_statement() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S {\n\
                   fn f(&self) {\n    self.a.lock();\n    self.b.lock();\n}\n}\n";
        let w = ws(src);
        let f = &w.files[0].fns[0];
        assert!(f.locks[1].at > f.locks[0].hold_end);
    }

    #[test]
    fn let_alias_resolves_lock_field() {
        let src = "struct S { directory: Option<Mutex<u32>> }\n\
                   impl S {\n\
                   fn f(&self) {\n    let dir = self.directory.as_ref();\n    dir.lock();\n}\n}\n";
        let w = ws(src);
        let f = &w.files[0].fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].field, "directory");
    }

    #[test]
    fn blocking_sites_and_guards_are_seen() {
        let src = "impl S {\n\
                   fn f(&self) {\n    self.pool.blocking(|| self.w.wait(1));\n    self.w.wait(2);\n}\n}\n";
        let w = ws(src);
        let f = &w.files[0].fns[0];
        assert_eq!(f.blocking.len(), 2);
        assert!(f.blocking[0].guarded);
        assert!(!f.blocking[1].guarded);
    }

    #[test]
    fn enum_and_tag_inventory() {
        let src = "pub enum E { A, B(u8), C { x: u8 } }\n\
                   pub const TAG_A: u8 = 0;\n\
                   pub const TAG_B: u8 = 1;\n";
        let w = ws(src);
        let file = &w.files[0];
        assert_eq!(file.enums[0].variants, vec!["A", "B", "C"]);
        assert_eq!(file.tags.len(), 2);
        assert_eq!(file.tags[1].value, 1);
    }
}
