//! A shared work queue synchronized entirely by invocation classes.
//!
//! §4.2: "by limiting a class to one process, mutual exclusion is
//! obtained among operations of that class." The queue's `enqueue`,
//! `dequeue` and `drain` all share one limit-1 class, so the type code
//! contains not a single lock — the coordinator is the lock.

use eden_capability::Rights;
use eden_kernel::{OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// A FIFO queue of [`Value`]s.
///
/// Operations (all in the single `mutators` class, limit 1, except
/// `len`):
///
/// | op | effect |
/// |---|---|
/// | `enqueue [value]` | append; returns the new length |
/// | `dequeue` | pop the head, or `Unit` when empty |
/// | `drain [u64 max]` | pop up to `max` items as a list |
/// | `len` | current length (concurrent reads) |
pub struct SharedQueueType;

impl SharedQueueType {
    /// The registered type name.
    pub const NAME: &'static str = "shared-queue";
}

impl TypeManager for SharedQueueType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(SharedQueueType::NAME)
            .class("mutators", 1)
            .class("reads", 4)
            .op("enqueue", "mutators", Rights::WRITE)
            .op("dequeue", "mutators", Rights::READ | Rights::WRITE)
            .op("drain", "mutators", Rights::READ | Rights::WRITE)
            .op("len", "reads", Rights::READ)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, _args: &[Value]) -> Result<(), OpError> {
        ctx.mutate_repr(|r| {
            r.put_u64("head", 0);
            r.put_u64("tail", 0);
        })?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "enqueue" => {
                let item = args
                    .first()
                    .cloned()
                    .ok_or_else(|| OpError::type_error("enqueue(value)"))?;
                let len = ctx.mutate_repr(|r| {
                    let tail = r.get_u64("tail").unwrap_or(0);
                    r.put_value(format!("item:{tail:016}"), &item);
                    r.put_u64("tail", tail + 1);
                    tail + 1 - r.get_u64("head").unwrap_or(0)
                })?;
                Ok(vec![Value::U64(len)])
            }
            "dequeue" => {
                let item = ctx.mutate_repr(|r| {
                    let head = r.get_u64("head").unwrap_or(0);
                    let tail = r.get_u64("tail").unwrap_or(0);
                    if head >= tail {
                        return None;
                    }
                    let seg = format!("item:{head:016}");
                    let item = r.get_value(&seg);
                    r.remove(&seg);
                    r.put_u64("head", head + 1);
                    item
                })?;
                Ok(vec![item.unwrap_or(Value::Unit)])
            }
            "drain" => {
                let max = args.first().and_then(Value::as_u64).unwrap_or(u64::MAX);
                let items = ctx.mutate_repr(|r| {
                    let mut out = Vec::new();
                    let mut head = r.get_u64("head").unwrap_or(0);
                    let tail = r.get_u64("tail").unwrap_or(0);
                    while head < tail && (out.len() as u64) < max {
                        let seg = format!("item:{head:016}");
                        if let Some(item) = r.get_value(&seg) {
                            out.push(item);
                        }
                        r.remove(&seg);
                        head += 1;
                    }
                    r.put_u64("head", head);
                    out
                })?;
                Ok(vec![Value::List(items)])
            }
            "len" => Ok(vec![Value::U64(ctx.read_repr(|r| {
                r.get_u64("tail").unwrap_or(0) - r.get_u64("head").unwrap_or(0)
            }))]),
            other => Err(OpError::no_such_op(other)),
        }
    }
}
