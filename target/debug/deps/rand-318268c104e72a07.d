/root/repo/target/debug/deps/rand-318268c104e72a07.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-318268c104e72a07: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
