/root/repo/target/debug/deps/records_model-d7f66934e2d937eb.d: crates/efs/tests/records_model.rs

/root/repo/target/debug/deps/records_model-d7f66934e2d937eb: crates/efs/tests/records_model.rs

crates/efs/tests/records_model.rs:
