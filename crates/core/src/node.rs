//! The node: virtual memory + virtual processors + the kernel proper.
//!
//! §4.3: "A node is an object that supplies *virtual memory* to store the
//! segments of active objects and *virtual processors* to execute
//! invocations. … At any point in time each active Eden object is
//! supported by exactly one node. This node is responsible for supplying
//! hardware resources and for receiving and processing invocations for
//! the object."
//!
//! [`Node`] is one kernel instance. Its pieces:
//!
//! * an **object table** (the virtual memory) of [`ObjectSlot`]s;
//! * a **virtual-processor pool** ([`VirtualProcessorPool`]): a bounded
//!   set of [`NodeConfig::vproc_workers`] worker threads that executes
//!   every invocation process, async invoke, move, reincarnation and
//!   redelivery — the paper's fixed processor complement (§3). Excess
//!   work queues up to [`NodeConfig::vproc_queue_cap`], past which the
//!   kernel sheds load with [`Status::Overloaded`];
//! * a **virtual-processor gate**: of the pooled invocation processes,
//!   only [`NodeConfig::virtual_processors`] *execute* concurrently; a
//!   process yields its processor while blocked in a nested invocation,
//!   so nesting can never deadlock the node (the default of 2 mirrors
//!   the two GDPs of the default Eden node machine, "field upgradable"
//!   to 4 — see experiment F2);
//! * the **location service**: hint cache → birth-node hint → broadcast
//!   `WhereIs` → forwarding addresses, realizing the location-independent
//!   object address space of §2;
//! * the **lifecycle machinery**: checkpoint / checksite / crash /
//!   reincarnation (§4.4), move (§4.3), freeze + replica caching (§4.3);
//! * a **receive loop** servicing the kernel-to-kernel protocol.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eden_capability::{Capability, NameGenerator, NodeId, ObjName, Rights};
use eden_directory::{DirOutput, DirectoryService, GossipConfig, MemberEvent};
use eden_obs::{now_ns, stage, KernelEvent, ObsRegistry, TraceCtx, TraceSampling};
use eden_store::CheckpointStore;
use eden_transport::Endpoint;
use eden_wire::{
    DirRegisterKind, DirState, Frame, HeldState, MemberStatus, Message, ObjectImage, Reader,
    Status, Value, WireDecode, WireEncode, Writer,
};
use parking_lot::{Mutex, RwLock};

use crate::ctx::OpCtx;
use crate::error::{EdenError, Result};
use crate::lru::LruMap;
use crate::metrics::{KernelMetrics, MetricsCell};
pub use crate::object::ReliabilityLevel;
use crate::object::{
    Checksite, CoordState, ObjStatus, ObjectSlot, PendingInvocation, ReplySink, CHECKSITE_SEGMENT,
};
use crate::repr::Representation;
use crate::sync::EdenSemaphore;
use crate::types::TypeRegistry;
use crate::vproc::{SubmitError, VirtualProcessorPool, VprocStats};
use crate::waiter::{LocationAnswer, QueryCollector, Waiter};

thread_local! {
    /// Whether the current thread holds a virtual-processor token (set
    /// inside invocation processes so nested invokes know to yield it).
    static HOLDS_VPROC: Cell<bool> = const { Cell::new(false) };

    /// Active deferred-dispatch collector. Set by the receive loop while
    /// it handles a multi-frame batch: `pump` pushes ready invocations
    /// here instead of submitting each to the pool individually, and the
    /// whole batch is enqueued under one pool lock/notify afterwards
    /// (`Node::flush_dispatch_batch`). `None` everywhere else, so worker
    /// threads and single-frame handling keep the direct submit path.
    static DISPATCH_BUF: RefCell<Option<Vec<DeferredDispatch>>> = const { RefCell::new(None) };
}

/// How many frames the receive loop asks the transport for per wakeup.
const RECV_BATCH_MAX: usize = 128;

/// One invocation dispatch deferred by `pump` into the receive loop's
/// batch. Carries the pool job plus everything needed to undo the
/// coordinator bookkeeping and shed the invocation if the pool rejects
/// this slot of the batch.
struct DeferredDispatch {
    job: Box<dyn FnOnce() + Send + 'static>,
    dispatch_ctx: Option<TraceCtx>,
    slot: Arc<ObjectSlot>,
    class: String,
    sink: ReplySink,
    reply_trace: Option<TraceCtx>,
}

/// Kernel tuning parameters.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Concurrent invocation executions (the node machine's GDPs).
    pub virtual_processors: usize,
    /// Default invocation timeout when the invoker does not supply one.
    pub default_invoke_timeout: Duration,
    /// Budget for one remote request/reply exchange before trying the
    /// next location candidate.
    pub remote_try_timeout: Duration,
    /// How long a broadcast location query collects answers when no
    /// active holder responds immediately.
    pub locate_window: Duration,
    /// Budget for a move transfer to be acknowledged.
    pub move_timeout: Duration,
    /// Forwarding budget on invocation requests (bounds forwarding
    /// chains left by repeated moves).
    pub hop_limit: u8,
    /// Hard cap on concurrent invocation processes within one object,
    /// over and above per-class limits.
    pub max_processes_per_object: usize,
    /// Retransmission interval for unanswered remote invocations. The
    /// same invocation id is re-sent, and the serving kernel dedupes,
    /// giving at-most-once execution per holder over a lossy network.
    pub retransmit_interval: Duration,
    /// Ablation switch: disable the location hint cache (every remote
    /// invocation falls back to birth hints and broadcast search).
    pub enable_location_cache: bool,
    /// Ablation switch: disable request retransmission (a lost frame
    /// costs the whole candidate budget).
    pub enable_retransmission: bool,
    /// Which invocations open a root trace span. Sampled-out
    /// invocations carry no [`TraceCtx`] at all, so every downstream
    /// layer (client send, transport, dispatch, execute, reply) skips
    /// its span work for free.
    pub trace_sampling: TraceSampling,
    /// Worker threads in the virtual-processor pool that runs every
    /// invocation process, async invoke, move, reincarnation and
    /// redelivery. `0` (the default) means auto: the host's available
    /// parallelism, floored at [`NodeConfig::virtual_processors`] so
    /// the configured invocation concurrency is always schedulable.
    pub vproc_workers: usize,
    /// Bound on the pool's task queue. Past it the kernel sheds load
    /// with [`Status::Overloaded`] instead of queueing without limit —
    /// the backpressure contract a fan-out client must handle.
    pub vproc_queue_cap: usize,
    /// Enables the sharded location directory and its gossip membership:
    /// each object name hashes to a *home* node that tracks the current
    /// holder, so a locate miss costs one round trip to the home instead
    /// of a broadcast plus the locate window. Off reproduces the seed
    /// kernel exactly (broadcast `WhereIs` is the only search).
    pub enable_directory: bool,
    /// Compatibility switch: when the directory cannot name a live
    /// holder, fall back to the seed's broadcast search. Disabling it
    /// makes misses cheap but surrenders the broadcast safety net
    /// (directory state is a hint, not ground truth).
    pub enable_broadcast_fallback: bool,
    /// Bound on the location hint cache; past it the least recently used
    /// hint is evicted (counted in `location_cache_evictions`).
    pub location_cache_cap: usize,
    /// Gossip protocol period: one direct liveness probe per period.
    pub gossip_interval: Duration,
    /// Budget for a probed peer to ack (directly or via relays) before
    /// it becomes a suspect.
    pub gossip_probe_timeout: Duration,
    /// How long a suspect may stay unrefuted before gossip declares it
    /// dead and the directory withholds its registrations.
    pub gossip_suspect_timeout: Duration,
    /// Runs the per-node stall watchdog thread (`eden-watchdog-<id>`),
    /// which probes the virtual-processor pool, the transport's writer
    /// queues and the in-flight remote invocations, and dumps a
    /// structured diagnostic snapshot to the flight recorder when
    /// something exceeds its deadline.
    pub enable_watchdog: bool,
    /// How often the watchdog probes.
    pub watchdog_interval: Duration,
    /// Age past which a busy virtual processor, a head-of-queue task or
    /// a non-draining writer queue counts as stalled.
    pub watchdog_stall_deadline: Duration,
    /// Age past which an in-flight remote invocation is reported as a
    /// `slow-invocation` flight-recorder event.
    pub slow_invocation_budget: Duration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            virtual_processors: 2,
            default_invoke_timeout: Duration::from_secs(5),
            remote_try_timeout: Duration::from_secs(2),
            locate_window: Duration::from_millis(250),
            move_timeout: Duration::from_secs(2),
            hop_limit: 8,
            max_processes_per_object: 64,
            retransmit_interval: Duration::from_millis(150),
            enable_location_cache: true,
            enable_retransmission: true,
            trace_sampling: TraceSampling::Always,
            vproc_workers: 0,
            vproc_queue_cap: 1024,
            enable_directory: true,
            enable_broadcast_fallback: true,
            location_cache_cap: 4096,
            gossip_interval: Duration::from_millis(100),
            gossip_probe_timeout: Duration::from_millis(200),
            gossip_suspect_timeout: Duration::from_millis(600),
            enable_watchdog: true,
            watchdog_interval: Duration::from_millis(50),
            watchdog_stall_deadline: Duration::from_secs(1),
            slow_invocation_budget: Duration::from_secs(2),
        }
    }
}

/// The reserved object name under which each kernel answers telemetry
/// scrapes (`get_metrics`, `get_trace`, `get_flight_log`).
///
/// [`NameGenerator`] epochs and sequence numbers start at zero and
/// never reach `u32::MAX`/`u64::MAX`, so the sentinel cannot collide
/// with a real object. Because the name's birth-node field is `node`,
/// ordinary invocation routing delivers a scrape to the right kernel
/// with no extra location traffic.
pub fn node_object_name(node: NodeId) -> ObjName {
    ObjName::from_parts(node, u32::MAX, u64::MAX)
}

/// A read-only capability for `node`'s telemetry object — the handle a
/// monitor holds per node it watches.
pub fn node_object_cap(node: NodeId) -> Capability {
    Capability::with_rights(node_object_name(node), Rights::READ)
}

/// Replies the receive loop can rendezvous to a waiting requester.
pub(crate) enum ReplyMsg {
    Invoke(Status, Vec<Value>, NodeId),
    MoveAck(bool, String),
    CkptAck(bool, u64),
    CkptData(Option<ObjectImage>),
    Replica(Option<ObjectImage>),
    DirAnswer(Option<NodeId>, DirState),
    Pong,
}

/// One pipelined request in flight: the registered reply waiter plus
/// what `Node::pipeline_wait` needs to retransmit and to attribute the
/// exchange (see `crate::pipeline::PipelinedClient`).
pub(crate) struct PipelineTicket {
    pub(crate) inv_id: u64,
    pub(crate) dst: NodeId,
    pub(crate) waiter: Arc<Waiter<ReplyMsg>>,
    pub(crate) start_ns: u64,
    pub(crate) trace: Option<TraceCtx>,
}

/// At-most-once bookkeeping for remotely served invocations: requests
/// currently executing, and a bounded cache of sent replies so a lost
/// reply can be re-sent instead of the operation re-executed.
#[derive(Default)]
struct ServedRequests {
    in_progress: HashSet<(NodeId, u64)>,
    done: HashMap<(NodeId, u64), (Status, Vec<Value>)>,
    order: std::collections::VecDeque<(NodeId, u64)>,
}

impl ServedRequests {
    const CAPACITY: usize = 4096;

    fn record_done(&mut self, key: (NodeId, u64), status: Status, results: Vec<Value>) {
        self.in_progress.remove(&key);
        if self.done.insert(key, (status, results)).is_none() {
            self.order.push_back(key);
        }
        while self.order.len() > Self::CAPACITY {
            if let Some(old) = self.order.pop_front() {
                self.done.remove(&old);
            }
        }
    }
}

struct LocationService {
    /// Last known holder of an object (hints; may be stale). Bounded by
    /// [`NodeConfig::location_cache_cap`] with LRU eviction.
    cache: Mutex<LruMap<ObjName, NodeId>>,
    /// Where objects this node moved away now live.
    forwards: RwLock<HashMap<ObjName, NodeId>>,
    /// Outstanding broadcast queries.
    queries: Mutex<HashMap<u64, Arc<QueryCollector>>>,
}

pub(crate) struct NodeInner {
    id: NodeId,
    config: NodeConfig,
    names: NameGenerator,
    registry: Arc<TypeRegistry>,
    objects: RwLock<HashMap<ObjName, Arc<ObjectSlot>>>,
    destroyed: Mutex<HashSet<ObjName>>,
    served: Mutex<ServedRequests>,
    location: LocationService,
    /// The sharded location directory and gossip membership (`None`
    /// reproduces the seed kernel exactly). The service is a pure state
    /// machine: the receive loop ticks it and feeds it frames; no thread
    /// of its own.
    directory: Option<Mutex<DirectoryService>>,
    pending: Mutex<HashMap<u64, Arc<Waiter<ReplyMsg>>>>,
    store: Arc<dyn CheckpointStore>,
    endpoint: Arc<dyn Endpoint>,
    gate: EdenSemaphore,
    vprocs: VirtualProcessorPool,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    metrics: MetricsCell,
    obs: Arc<ObsRegistry>,
    last_move_rejection: Mutex<Option<String>>,
    recv_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Remote invocations currently awaiting a reply:
    /// `inv_id -> (start_ns, trace_id)`. The watchdog walks this to
    /// report invocations past [`NodeConfig::slow_invocation_budget`].
    inflight: Mutex<HashMap<u64, (u64, u64)>>,
    /// The most recent watchdog diagnostic snapshot, if any stall has
    /// ever been detected on this node (scraped via `get_watchdog`).
    watchdog_snapshot: Mutex<Option<String>>,
    watchdog_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// One Eden kernel instance. Cheap to clone (shared interior).
#[derive(Clone)]
pub struct Node {
    inner: Arc<NodeInner>,
}

/// Introspection snapshot of one active object (see
/// [`Node::object_info`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// The object's unique name.
    pub name: ObjName,
    /// Its type.
    pub type_name: String,
    /// Lifecycle status.
    pub status: crate::object::ObjStatus,
    /// Whether the representation is frozen.
    pub frozen: bool,
    /// Whether this is a cached replica.
    pub replica: bool,
    /// Last durable checkpoint version.
    pub checkpoint_version: u64,
    /// Node keeping the long-term state.
    pub checksite: NodeId,
    /// Representation payload bytes.
    pub data_size: usize,
    /// Invocations queued at the coordinator.
    pub queued_invocations: usize,
    /// Invocation processes currently executing.
    pub running_invocations: usize,
}

/// A handle on an asynchronous invocation (§4.2 promises asynchronous
/// invocation "through a separate kernel primitive"; this is it).
pub struct InvocationHandle {
    waiter: Arc<Waiter<Result<Vec<Value>>>>,
}

impl InvocationHandle {
    /// Blocks until the invocation completes or `timeout` elapses.
    pub fn wait(&self, timeout: Duration) -> Result<Vec<Value>> {
        match self.waiter.wait(timeout) {
            Some(r) => r,
            None => Err(EdenError::Invoke(Status::Timeout)),
        }
    }

    /// Non-blocking poll.
    pub fn try_take(&self) -> Option<Result<Vec<Value>>> {
        self.waiter.try_take()
    }
}

impl Node {
    /// Boots a kernel on `endpoint` with the given store and type
    /// registry, and starts its receive loop.
    pub fn new(
        config: NodeConfig,
        endpoint: Arc<dyn Endpoint>,
        store: Arc<dyn CheckpointStore>,
        registry: Arc<TypeRegistry>,
    ) -> Node {
        let id = endpoint.node();
        let obs = Arc::new(ObsRegistry::new(id.0));
        obs.set_sampling(config.trace_sampling.clone());
        endpoint.attach_obs(obs.clone());
        store.attach_obs(obs.clone());
        let workers = if config.vproc_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(config.virtual_processors.max(1))
        } else {
            config.vproc_workers
        };
        let directory = if config.enable_directory {
            let gossip = GossipConfig {
                probe_interval: config.gossip_interval,
                probe_timeout: config.gossip_probe_timeout,
                suspect_timeout: config.gossip_suspect_timeout,
                ..GossipConfig::default()
            };
            Some(Mutex::new(DirectoryService::new(
                id,
                &endpoint.peers(),
                gossip,
                Instant::now(),
            )))
        } else {
            None
        };
        let cache_cap = config.location_cache_cap;
        let inner = Arc::new(NodeInner {
            id,
            gate: EdenSemaphore::new(config.virtual_processors.max(1) as u64),
            vprocs: VirtualProcessorPool::new(id, workers, config.vproc_queue_cap, &obs),
            config,
            names: NameGenerator::new(id),
            registry,
            objects: RwLock::new(HashMap::new()),
            destroyed: Mutex::new(HashSet::new()),
            served: Mutex::new(ServedRequests::default()),
            location: LocationService {
                cache: Mutex::new(LruMap::new(cache_cap)),
                forwards: RwLock::new(HashMap::new()),
                queries: Mutex::new(HashMap::new()),
            },
            directory,
            pending: Mutex::new(HashMap::new()),
            store,
            endpoint,
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            metrics: MetricsCell::new(&obs),
            obs,
            last_move_rejection: Mutex::new(None),
            recv_thread: Mutex::new(None),
            inflight: Mutex::new(HashMap::new()),
            watchdog_snapshot: Mutex::new(None),
            watchdog_thread: Mutex::new(None),
        });
        let node = Node { inner };
        let recv_node = node.clone();
        let handle = std::thread::Builder::new()
            .name(format!("eden-recv-{id}"))
            .spawn(move || recv_node.recv_loop())
            .expect("spawn receive loop");
        *node.inner.recv_thread.lock() = Some(handle);
        if node.inner.config.enable_watchdog {
            let dog = node.clone();
            let handle = std::thread::Builder::new()
                .name(format!("eden-watchdog-{id}"))
                .spawn(move || dog.watchdog_loop())
                .expect("spawn watchdog");
            *node.inner.watchdog_thread.lock() = Some(handle);
        }
        node
    }

    /// This kernel's node id.
    pub fn node_id(&self) -> NodeId {
        self.inner.id
    }

    /// The type registry (register types before creating objects).
    pub fn registry(&self) -> &Arc<TypeRegistry> {
        &self.inner.registry
    }

    /// A snapshot of the kernel counters.
    pub fn metrics(&self) -> KernelMetrics {
        self.inner.metrics.snapshot()
    }

    /// This node's observability registry: histograms, gauges, the
    /// flight recorder, and the span collector.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.inner.obs
    }

    /// A snapshot of the transport counters.
    pub fn transport_stats(&self) -> eden_transport::TransportStats {
        self.inner.endpoint.stats()
    }

    /// A snapshot of the virtual-processor pool: configured workers,
    /// live/idle/blocked counts, queue depth, and lifetime counters.
    pub fn vproc_stats(&self) -> VprocStats {
        self.inner.vprocs.stats()
    }

    /// The other nodes reachable on this node's network — what a policy
    /// object consults to make location decisions (§4.3).
    pub fn peers(&self) -> Vec<NodeId> {
        self.inner.endpoint.peers()
    }

    /// Names of objects currently active on this node.
    pub fn active_objects(&self) -> Vec<ObjName> {
        self.inner.objects.read().keys().copied().collect()
    }

    /// Whether `name` is active (or a cached replica) on this node.
    pub fn is_local(&self, name: ObjName) -> bool {
        self.inner.objects.read().contains_key(&name)
    }

    /// The kernel's checkpoint store (used by tooling and experiments).
    pub fn store(&self) -> &Arc<dyn CheckpointStore> {
        &self.inner.store
    }

    fn fresh_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    // ================= Location directory =================

    /// The cached location hint for `name`, refreshed as most recently
    /// used.
    pub fn location_hint(&self, name: ObjName) -> Option<NodeId> {
        self.inner.location.cache.lock().get(&name).copied()
    }

    /// Number of live location hints (bounded by
    /// [`NodeConfig::location_cache_cap`]).
    pub fn location_cache_len(&self) -> usize {
        self.inner.location.cache.lock().len()
    }

    fn cache_insert(&self, name: ObjName, holder: NodeId) {
        let evicted = self.inner.location.cache.lock().insert(name, holder);
        for _ in 0..evicted {
            self.inner.metrics.bump_cache_eviction();
        }
    }

    /// The gossip membership view: every known node with its believed
    /// status and incarnation, self included. Self-only when the
    /// directory is disabled.
    pub fn membership(&self) -> Vec<(NodeId, MemberStatus, u64)> {
        match &self.inner.directory {
            Some(dir) => dir.lock().snapshot(),
            None => vec![(self.inner.id, MemberStatus::Alive, 0)],
        }
    }

    /// The directory home node for `name` on this node's current ring,
    /// if the directory is enabled.
    pub fn directory_home(&self, name: ObjName) -> Option<NodeId> {
        self.inner
            .directory
            .as_ref()
            .and_then(|d| d.lock().home(name))
    }

    /// Number of directory entries homed on this node's shard.
    pub fn directory_shard_len(&self) -> usize {
        self.inner
            .directory
            .as_ref()
            .map(|d| d.lock().shard_len())
            .unwrap_or(0)
    }

    /// Whether gossip currently believes `node` is dead. Used to skip
    /// doomed candidate probes; safe because the broadcast fallback (or
    /// the directory itself) still finds the object if gossip is wrong.
    fn peer_is_dead(&self, node: NodeId) -> bool {
        match &self.inner.directory {
            Some(dir) => dir.lock().status_of(node) == MemberStatus::Dead,
            None => false,
        }
    }

    /// Sends the frames a directory/membership step produced and applies
    /// its liveness events to kernel state.
    fn apply_dir_output(&self, out: DirOutput) {
        for (dst, msg) in out.msgs {
            let _ = self.inner.endpoint.send(Frame::to(self.inner.id, dst, msg));
        }
        for event in out.events {
            match event {
                MemberEvent::Alive(node) => {
                    self.inner
                        .obs
                        .recorder()
                        .record(KernelEvent::MemberAlive { node: node.0 });
                }
                MemberEvent::Suspect(node) => {
                    self.inner
                        .obs
                        .recorder()
                        .record(KernelEvent::MemberSuspect { node: node.0 });
                }
                MemberEvent::Dead(node) => {
                    self.inner.metrics.bump_gossip_dead();
                    self.inner
                        .obs
                        .recorder()
                        .record(KernelEvent::MemberDead { node: node.0 });
                    // Hints pointing at a dead node are now worthless.
                    self.inner
                        .location
                        .cache
                        .lock()
                        .retain(|_, holder| *holder != node);
                    // Broadcasts in flight will never hear from it: rule
                    // it out so their collectors can complete early.
                    for collector in self.inner.location.queries.lock().values() {
                        collector.note_unreachable();
                    }
                }
            }
        }
        if out.topology_changed {
            self.reregister_local_objects();
        }
    }

    /// Re-registers every locally active object after a ring change so
    /// its directory entry migrates to the new home node. Checkpoint-only
    /// registrations are not re-announced (the store has no enumeration);
    /// until the holder's next checkpoint a re-homed entry simply lacks
    /// its checksite fallback and a miss rides the broadcast instead.
    fn reregister_local_objects(&self) {
        let names: Vec<ObjName> = self
            .inner
            .objects
            .read()
            .iter()
            .filter(|(_, slot)| !slot.is_replica())
            .map(|(name, _)| *name)
            .collect();
        for name in names {
            self.dir_register(name, self.inner.id, DirRegisterKind::Active);
        }
    }

    /// Registers (or drops) a holder fact at the object's directory home.
    /// Fire-and-forget: the directory stores hints, not truth (§4.3), so
    /// a lost registration merely degrades a later locate to the
    /// broadcast fallback.
    fn dir_register(&self, name: ObjName, holder: NodeId, kind: DirRegisterKind) {
        let Some(dir) = &self.inner.directory else {
            return;
        };
        self.inner.metrics.bump_dir_register();
        let forward = dir
            .lock()
            .handle_register(self.inner.id, name, holder, kind);
        let home = forward
            .as_ref()
            .map(|(dst, _)| *dst)
            .unwrap_or(self.inner.id);
        self.inner
            .obs
            .recorder()
            .record(KernelEvent::DirectoryRegister {
                obj: name.to_u128(),
                home: home.0,
            });
        if let Some((dst, msg)) = forward {
            let _ = self.inner.endpoint.send(Frame::to(self.inner.id, dst, msg));
        }
    }

    /// Resolves `name` through the sharded directory: one `DirQuery` to
    /// the object's home node (or a local shard lookup when this node is
    /// the home). Returns the registered holder on a hit; `None` on a
    /// miss, a withheld (suspect) answer, or an unreachable home.
    pub fn directory_locate(&self, name: ObjName) -> Option<NodeId> {
        let deadline = Instant::now() + self.inner.config.locate_window;
        self.directory_locate_before(name, deadline, None)
    }

    fn directory_locate_before(
        &self,
        name: ObjName,
        deadline: Instant,
        trace: Option<TraceCtx>,
    ) -> Option<NodeId> {
        let dir = self.inner.directory.as_ref()?;
        let home = dir.lock().home(name)?;
        let query_start = now_ns();
        self.inner.metrics.bump_dir_query();
        self.inner
            .obs
            .recorder()
            .record(KernelEvent::DirectoryQuery {
                obj: name.to_u128(),
                home: home.0,
            });
        let hit = if home == self.inner.id {
            let (holder, state) = dir.lock().answer_query(name);
            (state == DirState::Hit).then_some(holder).flatten()
        } else {
            let query_id = self.fresh_id();
            let waiter = Arc::new(Waiter::new());
            self.inner.pending.lock().insert(query_id, waiter.clone());
            let _ = self.inner.endpoint.send(Frame::to(
                self.inner.id,
                home,
                Message::DirQuery {
                    query_id,
                    name,
                    reply_to: self.inner.id,
                },
            ));
            let budget = self
                .inner
                .config
                .locate_window
                .min(deadline.saturating_duration_since(Instant::now()));
            let result = self.inner.vprocs.blocking(|| waiter.wait(budget));
            self.inner.pending.lock().remove(&query_id);
            match result {
                Some(ReplyMsg::DirAnswer(holder, state)) => {
                    (state == DirState::Hit).then_some(holder).flatten()
                }
                // Home unreachable or the answer was lost: treat as a
                // miss and let the caller fall back.
                _ => None,
            }
        };
        if hit.is_some() {
            self.inner.metrics.bump_dir_hit();
        }
        if let Some(t) = trace {
            // Retroactive: covers the shard lookup or the DirQuery RTT,
            // so the critical-path report can price directory time.
            self.inner.obs.record_span_staged(
                "dir-query",
                stage::DIRECTORY,
                t,
                query_start,
                now_ns(),
            );
        }
        hit
    }

    // ================= Object creation =================

    /// Creates a new object of `type_name` on this node; `args` go to the
    /// type manager's `initialize`. Returns the full-rights capability.
    pub fn create_object(&self, type_name: &str, args: &[Value]) -> Result<Capability> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(EdenError::ShuttingDown);
        }
        let manager = self
            .inner
            .registry
            .manager(type_name)
            .ok_or_else(|| EdenError::UnknownType(type_name.to_string()))?;
        let name = self.inner.names.next_name();
        let slot = ObjectSlot::new(
            name,
            type_name.to_string(),
            Representation::new(),
            ObjStatus::Active,
            Checksite {
                node: self.inner.id,
                level: ReliabilityLevel::Local,
            },
        );
        self.inner.objects.write().insert(name, slot.clone());
        let cap = Capability::mint(name);
        let ctx = OpCtx::new(self, &slot, cap, self.inner.id, "<initialize>");
        match manager.initialize(&ctx, args) {
            Ok(()) => {
                self.dir_register(name, self.inner.id, DirRegisterKind::Active);
                Ok(cap)
            }
            Err(e) => {
                self.inner.objects.write().remove(&name);
                Err(EdenError::Invoke(e.into_status()))
            }
        }
    }

    // ================= Invocation =================

    /// Invokes `op` on the object designated by `cap`, blocking for the
    /// status and return parameters. Location-independent: the target may
    /// be on any node, active or passive.
    pub fn invoke(&self, cap: Capability, op: &str, args: &[Value]) -> Result<Vec<Value>> {
        self.invoke_with_timeout(cap, op, args, self.inner.config.default_invoke_timeout)
    }

    /// [`Node::invoke`] with a caller-supplied timeout (§4.2: "The
    /// invocation request may also contain a user-supplied timeout").
    pub fn invoke_with_timeout(
        &self,
        cap: Capability,
        op: &str,
        args: &[Value],
        timeout: Duration,
    ) -> Result<Vec<Value>> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(EdenError::ShuttingDown);
        }
        let (status, results) = self.do_invoke(cap, op, args, timeout);
        match status {
            Status::Ok => Ok(results),
            Status::Timeout => {
                self.inner.metrics.bump_timeout();
                Err(EdenError::Invoke(Status::Timeout))
            }
            other => Err(EdenError::Invoke(other)),
        }
    }

    /// Starts an invocation without blocking; the returned handle
    /// rendezvouses with the eventual result.
    pub fn invoke_async(&self, cap: Capability, op: &str, args: &[Value]) -> InvocationHandle {
        let waiter = Arc::new(Waiter::new());
        let handle = InvocationHandle {
            waiter: waiter.clone(),
        };
        let node = self.clone();
        let op = op.to_string();
        let args = args.to_vec();
        let task_waiter = waiter.clone();
        if let Err(e) = self.inner.vprocs.submit(move || {
            let r = node.invoke(cap, &op, &args);
            task_waiter.complete(r);
        }) {
            waiter.complete(Err(match e {
                SubmitError::Overloaded => EdenError::Invoke(Status::Overloaded),
                SubmitError::Closed => EdenError::ShuttingDown,
            }));
        }
        handle
    }

    /// Nested invocation from inside an operation: yields the virtual
    /// processor while blocked.
    pub(crate) fn invoke_nested(
        &self,
        cap: Capability,
        op: &str,
        args: &[Value],
    ) -> Result<Vec<Value>> {
        let holds = HOLDS_VPROC.with(Cell::get);
        if holds {
            self.inner.gate.v();
        }
        let r = self.invoke(cap, op, args);
        if holds {
            self.inner.gate.p();
        }
        r
    }

    /// The invocation state machine: local slot → local checkpoint →
    /// located remote holder.
    fn do_invoke(
        &self,
        cap: Capability,
        op: &str,
        args: &[Value],
        timeout: Duration,
    ) -> (Status, Vec<Value>) {
        let deadline = Instant::now() + timeout;
        let name = cap.name();
        // Telemetry scrape of this kernel: served inline, before any
        // span opens, so scraping never perturbs the traces it reads.
        // A scrape of a *remote* kernel falls through to the ordinary
        // remote path below — the sentinel name's birth hint routes it.
        if name == node_object_name(self.inner.id) {
            return self.serve_node_object(cap, op, args);
        }
        // The root of this invocation's trace: every downstream span —
        // client-send, net, dispatch, execute, reply — descends from it,
        // across however many nodes the invocation visits. Subject to
        // the node's sampling policy: `None` means this invocation is
        // unsampled and no layer anywhere opens a span for it.
        let root = self.inner.obs.sampled_root_span("invoke", op);
        let ctx = root.as_ref().map(|r| r.ctx());

        // Fast path: active (or replica) on this node. The lookup is
        // bound first so the table's read guard drops before the
        // invocation blocks (an `if let` scrutinee guard would be held
        // across the wait and deadlock crash/move teardown).
        let local = self.inner.objects.read().get(&name).cloned();
        if let Some(slot) = local {
            self.inner.metrics.bump_local();
            return self.invoke_on_slot(&slot, cap, op, args, deadline, ctx);
        }
        if self.inner.destroyed.lock().contains(&name) {
            return (Status::Destroyed, Vec::new());
        }
        // Passive here: reincarnate locally — but only when we have not
        // moved the object away. An object's checkpoints legitimately
        // stay at its checksite after a move (§4.4), so a forwarding
        // address must win over the local checkpoint or the source node
        // would resurrect a stale twin.
        let moved_away = self.inner.location.forwards.read().contains_key(&name);
        if !moved_away {
            if let Some(slot) = self.activate_passive_local(name) {
                self.inner.metrics.bump_local();
                return self.invoke_on_slot(&slot, cap, op, args, deadline, ctx);
            }
        }

        // Remote: try hints in order, then broadcast.
        let hint_start = now_ns();
        let peers = self.inner.endpoint.peers();
        let mut tried = HashSet::new();
        let mut candidates: Vec<(NodeId, bool)> = Vec::new(); // (node, from_cache)
        if let Some(&fwd) = self.inner.location.forwards.read().get(&name) {
            candidates.push((fwd, false));
        }
        if self.inner.config.enable_location_cache {
            if let Some(hint) = self.inner.location.cache.lock().get(&name).copied() {
                candidates.push((hint, true));
            }
        }
        let birth = name.birth_node();
        if birth != self.inner.id && peers.contains(&birth) {
            candidates.push((birth, false));
        }
        if let Some(t) = ctx {
            // Hint assembly (forwarding table + LRU cache + birth hint):
            // usually nanoseconds, but visible in the report when lock
            // contention makes it otherwise.
            self.inner.obs.record_span_staged(
                "hint-probe",
                stage::DIRECTORY,
                t,
                hint_start,
                now_ns(),
            );
        }

        for (candidate, from_cache) in candidates {
            if candidate == self.inner.id || !tried.insert(candidate) {
                continue;
            }
            if !peers.contains(&candidate) {
                continue;
            }
            // Gossip already declared this candidate dead: skip the
            // doomed probe and its whole try budget. The directory (and
            // the broadcast fallback) find the survivor.
            if self.peer_is_dead(candidate) {
                continue;
            }
            let Some(budget) = self.try_budget(deadline) else {
                return (Status::Timeout, Vec::new());
            };
            if from_cache {
                self.inner.metrics.bump_cache_hit();
            }
            let (status, results, from) = self.remote_invoke(candidate, cap, op, args, budget, ctx);
            match status {
                Status::NoSuchObject | Status::Timeout => {
                    if from_cache {
                        self.inner.location.cache.lock().remove(&name);
                    }
                    continue;
                }
                // Every other status is an *answer* from the object's
                // real home — enumerated (not `_`) so a new wire status
                // forces a decision about whether it ends the search.
                Status::Ok
                | Status::NoSuchOperation(_)
                | Status::RightsViolation { .. }
                | Status::ObjectCrashed
                | Status::Frozen
                | Status::TypeError(_)
                | Status::NodeUnreachable
                | Status::Destroyed
                | Status::AppError { .. }
                | Status::Overloaded => {
                    // Cache the node that *answered*: after a forwarding
                    // chain that is the object's real home.
                    if self.inner.config.enable_location_cache {
                        self.cache_insert(name, from);
                    }
                    return (status, results);
                }
            }
        }

        // Directory lookup: one message to the object's home node names
        // the registered holder, where the seed paid a broadcast plus
        // the locate window.
        if self.inner.directory.is_some() {
            if let Some(holder) = self.directory_locate_before(name, deadline, ctx) {
                if holder != self.inner.id
                    && peers.contains(&holder)
                    && !self.peer_is_dead(holder)
                    && tried.insert(holder)
                {
                    let Some(budget) = self.try_budget(deadline) else {
                        return (Status::Timeout, Vec::new());
                    };
                    let (status, results, from) =
                        self.remote_invoke(holder, cap, op, args, budget, ctx);
                    match status {
                        // A stale registration (the holder moved or
                        // crashed since it registered): fall through to
                        // the broadcast safety net.
                        Status::NoSuchObject | Status::Timeout => {}
                        Status::Ok
                        | Status::NoSuchOperation(_)
                        | Status::RightsViolation { .. }
                        | Status::ObjectCrashed
                        | Status::Frozen
                        | Status::TypeError(_)
                        | Status::NodeUnreachable
                        | Status::Destroyed
                        | Status::AppError { .. }
                        | Status::Overloaded => {
                            if self.inner.config.enable_location_cache {
                                self.cache_insert(name, from);
                            }
                            return (status, results);
                        }
                    }
                }
            }
            if !self.inner.config.enable_broadcast_fallback {
                // Directory-only mode (experiments): a miss is final.
                return (Status::NoSuchObject, Vec::new());
            }
        }

        // Broadcast search.
        if Instant::now() >= deadline {
            return (Status::Timeout, Vec::new());
        }
        let where_is_start = now_ns();
        let answers = self.locate_broadcast(name);
        if let Some(t) = ctx {
            // The seed's safety net: a WhereIs broadcast plus the locate
            // window. When this dominates a trace, the directory missed.
            self.inner.obs.record_span_staged(
                "where-is",
                stage::DIRECTORY,
                t,
                where_is_start,
                now_ns(),
            );
        }
        let mut ordered: Vec<NodeId> = Vec::new();
        for want in [
            HeldState::Active,
            HeldState::FrozenReplica,
            HeldState::Passive,
        ] {
            for a in &answers {
                if a.state == want && !ordered.contains(&a.holder) {
                    ordered.push(a.holder);
                }
            }
        }
        for holder in ordered {
            if holder == self.inner.id || tried.contains(&holder) {
                continue;
            }
            let Some(budget) = self.try_budget(deadline) else {
                return (Status::Timeout, Vec::new());
            };
            let (status, results, from) = self.remote_invoke(holder, cap, op, args, budget, ctx);
            match status {
                Status::NoSuchObject | Status::Timeout => continue,
                Status::Ok
                | Status::NoSuchOperation(_)
                | Status::RightsViolation { .. }
                | Status::ObjectCrashed
                | Status::Frozen
                | Status::TypeError(_)
                | Status::NodeUnreachable
                | Status::Destroyed
                | Status::AppError { .. }
                | Status::Overloaded => {
                    if self.inner.config.enable_location_cache {
                        self.cache_insert(name, from);
                    }
                    return (status, results);
                }
            }
        }
        (Status::NoSuchObject, Vec::new())
    }

    /// Serves an invocation on this kernel's reserved telemetry object
    /// (see [`node_object_name`]). The kernel itself is the "object":
    /// there is no slot, no coordinator, no queueing — a scrape reads
    /// the observability registry and replies inline. `Rights::READ`
    /// gates all three operations.
    fn serve_node_object(&self, cap: Capability, op: &str, args: &[Value]) -> (Status, Vec<Value>) {
        if !cap.permits(Rights::READ) {
            self.inner.metrics.bump_rights_violation();
            return (
                Status::RightsViolation {
                    required: Rights::READ,
                    held: cap.rights(),
                },
                Vec::new(),
            );
        }
        let obs = &self.inner.obs;
        match op {
            // Counters, gauges and histogram snapshots of this node.
            "get_metrics" => (
                Status::Ok,
                vec![eden_wire::obs_codec::registry_metrics_to_value(obs)],
            ),
            // Span records — all of them, or one trace when the first
            // argument is a `U64` trace id.
            "get_trace" => {
                let spans = match args.first() {
                    Some(Value::U64(trace_id)) => obs.traces().spans_for(*trace_id),
                    _ => obs.traces().spans(),
                };
                (
                    Status::Ok,
                    vec![eden_wire::obs_codec::spans_to_value(&spans)],
                )
            }
            // Flight-recorder events — all retained, or the last `n`
            // when the first argument is a `U64`.
            "get_flight_log" => {
                let events = match args.first() {
                    Some(Value::U64(n)) => obs.recorder().last(*n as usize),
                    _ => obs.recorder().events(),
                };
                (
                    Status::Ok,
                    vec![eden_wire::obs_codec::events_to_value(
                        self.inner.id.0,
                        &events,
                    )],
                )
            }
            // This node's gossip membership view: one map per known node
            // with its believed status and incarnation (self-only when
            // the directory is disabled).
            "get_membership" => {
                let rows = self
                    .membership()
                    .into_iter()
                    .map(|(node, status, incarnation)| {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("node".to_string(), Value::U64(node.0 as u64));
                        m.insert("status".to_string(), Value::Str(status.label().to_string()));
                        m.insert("incarnation".to_string(), Value::U64(incarnation));
                        Value::Map(m)
                    })
                    .collect();
                (Status::Ok, vec![Value::List(rows)])
            }
            // Stall-watchdog state: the cumulative stall count and the
            // most recent diagnostic snapshot (empty string when the
            // node has never stalled).
            "get_watchdog" => {
                let mut m = std::collections::BTreeMap::new();
                m.insert(
                    "stalls".to_string(),
                    Value::U64(obs.counter("watchdog.stalls").get()),
                );
                m.insert(
                    "snapshot".to_string(),
                    Value::Str(
                        self.inner
                            .watchdog_snapshot
                            .lock()
                            .clone()
                            .unwrap_or_default(),
                    ),
                );
                (Status::Ok, vec![Value::Map(m)])
            }
            other => (Status::NoSuchOperation(other.to_string()), Vec::new()),
        }
    }

    /// Remaining time for one candidate attempt, if any remains.
    fn try_budget(&self, deadline: Instant) -> Option<Duration> {
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        Some((deadline - now).min(self.inner.config.remote_try_timeout))
    }

    /// Validates and enqueues an invocation on a local slot, then waits.
    fn invoke_on_slot(
        &self,
        slot: &Arc<ObjectSlot>,
        cap: Capability,
        op: &str,
        args: &[Value],
        deadline: Instant,
        ctx: Option<TraceCtx>,
    ) -> (Status, Vec<Value>) {
        let start_ns = now_ns();
        let waiter: Arc<Waiter<(Status, Vec<Value>)>> = Arc::new(Waiter::new());
        let pending =
            match self.validate(slot, cap, op, args, ReplySink::Local(waiter.clone()), ctx) {
                Ok(p) => p,
                Err(status) => return (status, Vec::new()),
            };
        self.enqueue(slot, pending);
        let now = Instant::now();
        let budget = if deadline > now {
            deadline - now
        } else {
            Duration::ZERO
        };
        // A pool worker waiting here (async or nested invocation) yields
        // its place: the reply it waits for may itself need a worker.
        let outcome = match self.inner.vprocs.blocking(|| waiter.wait(budget)) {
            Some((status, results)) => (status, results),
            None => (Status::Timeout, Vec::new()),
        };
        self.inner
            .obs
            .histogram("invoke.local")
            .record(now_ns().saturating_sub(start_ns));
        outcome
    }

    /// Builds a validated [`PendingInvocation`], or the failure status.
    fn validate(
        &self,
        slot: &Arc<ObjectSlot>,
        cap: Capability,
        op: &str,
        args: &[Value],
        sink: ReplySink,
        trace: Option<TraceCtx>,
    ) -> std::result::Result<PendingInvocation, Status> {
        let Some(resolved) = self.inner.registry.resolve_op(&slot.type_name, op) else {
            return Err(Status::NoSuchOperation(op.to_string()));
        };
        if !cap.permits(resolved.op.required) {
            self.inner.metrics.bump_rights_violation();
            return Err(Status::RightsViolation {
                required: resolved.op.required,
                held: cap.rights(),
            });
        }
        Ok(PendingInvocation {
            presented: cap,
            operation: op.to_string(),
            args: args.to_vec(),
            resolved,
            sink,
            caller: self.inner.id,
            trace,
            enqueue_ns: now_ns(),
        })
    }

    /// Queues an invocation at the coordinator and pumps dispatch.
    fn enqueue(&self, slot: &Arc<ObjectSlot>, pending: PendingInvocation) {
        let mut coord = slot.coord.lock();
        self.inner.obs.gauge("coord.queue_depth").inc();
        if coord.status == ObjStatus::Crashed {
            // Teardown is in progress; the invocation rides along and is
            // rerouted (or refused) by the teardown path.
            coord.queue.push_back(pending);
            return;
        }
        coord.queue.push_back(pending);
        if coord.queue.len() > 1 || coord.status != ObjStatus::Active {
            self.inner.metrics.bump_class_queued();
        }
        self.pump(slot, &mut coord);
    }

    /// Drains the coordinator queue, keeping the queue-depth gauge true.
    fn drain_queue(&self, coord: &mut CoordState) -> Vec<PendingInvocation> {
        let queued: Vec<PendingInvocation> = coord.queue.drain(..).collect();
        self.inner
            .obs
            .gauge("coord.queue_depth")
            .add(-(queued.len() as i64));
        queued
    }

    /// The coordinator's dispatch rule: scan the queue for invocations
    /// whose class has spare capacity; spawn an invocation process for
    /// each (§4.2).
    fn pump(&self, slot: &Arc<ObjectSlot>, coord: &mut CoordState) {
        if coord.status != ObjStatus::Active {
            return;
        }
        if coord.crash_requested || coord.destroy_requested {
            return;
        }
        if let Some(dst) = coord.pending_move {
            if coord.running == 0 {
                coord.status = ObjStatus::Moving;
                coord.pending_move = None;
                let node = self.clone();
                let task_slot = slot.clone();
                if self
                    .inner
                    .vprocs
                    .submit(move || node.start_move(task_slot, dst))
                    .is_err()
                {
                    // Pool saturated (or shutting down): resume in place;
                    // a later pump retries the move.
                    coord.status = ObjStatus::Active;
                    coord.pending_move = Some(dst);
                }
            }
            return; // No dispatch while a move is pending.
        }
        let mut i = 0;
        while i < coord.queue.len() {
            if coord.running >= self.inner.config.max_processes_per_object {
                break;
            }
            let class = coord.queue[i].resolved.op.class.clone();
            let limit = coord.queue[i].resolved.limit;
            let in_service = coord.class_in_service.get(&class).copied().unwrap_or(0);
            if in_service < limit {
                let pending = coord.queue.remove(i).expect("index in bounds");
                coord.running += 1;
                self.inner.obs.gauge("coord.queue_depth").dec();
                self.inner
                    .obs
                    .gauge(&format!("class.in_service.{class}"))
                    .inc();
                *coord.class_in_service.entry(class.clone()).or_insert(0) += 1;
                let node = self.clone();
                let task_slot = slot.clone();
                let sink = pending.sink.clone();
                let trace = pending.trace;
                // Close the coordinator-residency gap retroactively:
                // `dispatch` covers enqueue → this dispatch decision.
                // The invocation's remaining spans (the pool's
                // `vproc-wait`, then `execute`) parent on it, so the
                // three intervals tile the queue time without overlap.
                let mut pending = pending;
                let dispatch_ctx = trace.map(|t| {
                    self.inner.obs.record_span_staged(
                        "dispatch",
                        stage::DISPATCH,
                        t,
                        pending.enqueue_ns,
                        now_ns(),
                    )
                });
                pending.trace = dispatch_ctx;
                let mut job: Option<Box<dyn FnOnce() + Send + 'static>> =
                    Some(Box::new(move || node.run_invocation(task_slot, pending)));
                // While the receive loop is working through a frame
                // batch, hand the dispatch to its collector instead of
                // the pool: the whole batch is then submitted under one
                // pool lock/notify, and the collector owns the undo for
                // any per-task Overloaded verdict.
                let deferred = DISPATCH_BUF.with(|buf| {
                    let mut b = buf.borrow_mut();
                    if let Some(list) = b.as_mut() {
                        list.push(DeferredDispatch {
                            job: job.take().expect("job not yet consumed"),
                            dispatch_ctx,
                            slot: slot.clone(),
                            class: class.clone(),
                            sink: sink.clone(),
                            reply_trace: trace,
                        });
                        true
                    } else {
                        false
                    }
                });
                if deferred {
                    // Accounted as a process at flush time if accepted.
                } else if self
                    .inner
                    .vprocs
                    .submit_traced(job.take().expect("job not yet consumed"), dispatch_ctx)
                    .is_ok()
                {
                    self.inner.metrics.bump_process();
                } else {
                    // Pool saturated: undo the dispatch bookkeeping and
                    // shed this invocation with the backpressure status.
                    coord.running -= 1;
                    self.inner
                        .obs
                        .gauge(&format!("class.in_service.{class}"))
                        .dec();
                    if let Some(n) = coord.class_in_service.get_mut(&class) {
                        *n -= 1;
                        if *n == 0 {
                            coord.class_in_service.remove(&class);
                        }
                    }
                    self.send_reply(sink, Status::Overloaded, Vec::new(), trace);
                    break; // The queue is full; later pumps retry the rest.
                }
            } else {
                i += 1;
            }
        }
    }

    /// The body of one invocation process.
    fn run_invocation(&self, slot: Arc<ObjectSlot>, pending: PendingInvocation) {
        // `pending.trace` was rewritten at dispatch (see `pump`) to the
        // `dispatch` span's context; queue residency in the pool was
        // already recorded by the pool itself as `vproc-wait`. All that
        // remains here is timing the execution.
        let exec_span = pending.trace.map(|t| {
            self.inner
                .obs
                .child_span_staged("execute", stage::EXECUTE, t)
        });
        // Take a virtual processor for the duration of execution.
        self.inner.gate.p();
        HOLDS_VPROC.with(|c| c.set(true));
        let exec_start = now_ns();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let ctx = OpCtx::new(
                self,
                &slot,
                pending.presented,
                pending.caller,
                pending.operation.clone(),
            );
            pending
                .resolved
                .manager
                .dispatch(&ctx, &pending.operation, &pending.args)
        }));
        self.inner
            .obs
            .histogram("invoke.execute")
            .record(now_ns().saturating_sub(exec_start));
        HOLDS_VPROC.with(|c| c.set(false));
        self.inner.gate.v();
        let exec_ctx = exec_span.map(|s| {
            let c = s.ctx();
            s.finish();
            c
        });

        let (status, results) = match outcome {
            Ok(Ok(values)) => (Status::Ok, values),
            Ok(Err(e)) => (e.into_status(), Vec::new()),
            Err(_) => (
                Status::AppError {
                    code: -3,
                    message: format!("operation '{}' panicked", pending.operation),
                },
                Vec::new(),
            ),
        };
        self.send_reply(pending.sink, status, results, exec_ctx);

        // Completion bookkeeping: release the class slot, then either
        // finish a requested crash/destroy or pump the next dispatch.
        let class = pending.resolved.op.class;
        let mut coord = slot.coord.lock();
        coord.running -= 1;
        self.inner
            .obs
            .gauge(&format!("class.in_service.{class}"))
            .dec();
        if let Some(n) = coord.class_in_service.get_mut(&class) {
            *n -= 1;
            if *n == 0 {
                coord.class_in_service.remove(&class);
            }
        }
        if coord.running == 0 {
            slot.quiesce_cv.notify_all();
            if coord.crash_requested {
                coord.status = ObjStatus::Crashed;
                drop(coord);
                self.finish_crash(&slot);
                return;
            }
            if coord.destroy_requested {
                coord.status = ObjStatus::Crashed;
                drop(coord);
                self.finish_destroy(&slot);
                return;
            }
        }
        self.pump(&slot, &mut coord);
    }

    fn send_reply(
        &self,
        sink: ReplySink,
        status: Status,
        results: Vec<Value>,
        trace: Option<TraceCtx>,
    ) {
        match sink {
            ReplySink::Local(waiter) => waiter.complete((status, results)),
            ReplySink::Remote { inv_id, reply_to } => {
                self.inner.served.lock().record_done(
                    (reply_to, inv_id),
                    status.clone(),
                    results.clone(),
                );
                let mut frame = Frame::to(
                    self.inner.id,
                    reply_to,
                    Message::InvokeReply {
                        inv_id,
                        status,
                        results,
                    },
                );
                if let Some(t) = trace {
                    frame = frame.with_trace(t);
                }
                let _ = self.inner.endpoint.send(frame);
            }
            ReplySink::Discard => {}
        }
    }

    /// Sends one invocation to `dst` and waits for its reply. The third
    /// element is the node that actually answered — after a forwarding
    /// chain this is the object's true home, which the caller caches so
    /// the chain is paid only once.
    fn remote_invoke(
        &self,
        dst: NodeId,
        cap: Capability,
        op: &str,
        args: &[Value],
        budget: Duration,
        parent: Option<TraceCtx>,
    ) -> (Status, Vec<Value>, NodeId) {
        self.inner.metrics.bump_remote_sent();
        let start_ns = now_ns();
        // The `client-send` span covers the whole request/reply exchange;
        // its context rides the request frame so the serving kernel's
        // spans join the same trace. No parent means the invocation was
        // sampled out — no span opens and the frame carries no context.
        let span = parent.map(|p| self.inner.obs.child_span("client-send", p));
        let send_ctx = span.as_ref().map(|s| s.ctx());
        let inv_id = self.fresh_id();
        let waiter = Arc::new(Waiter::new());
        self.inner.pending.lock().insert(inv_id, waiter.clone());
        self.inner
            .inflight
            .lock()
            .insert(inv_id, (start_ns, send_ctx.map_or(0, |c| c.trace_id)));
        let request = || {
            let mut frame = Frame::to(
                self.inner.id,
                dst,
                Message::InvokeRequest {
                    inv_id,
                    target: cap,
                    operation: op.to_string(),
                    args: args.to_vec(),
                    reply_to: self.inner.id,
                    hops: self.inner.config.hop_limit,
                },
            );
            if let Some(t) = send_ctx {
                frame = frame.with_trace(t);
            }
            frame
        };
        let sent = self.inner.endpoint.send(request());
        if sent.is_err() {
            self.inner.pending.lock().remove(&inv_id);
            self.inner.inflight.lock().remove(&inv_id);
            return (Status::NodeUnreachable, Vec::new(), dst);
        }
        // Wait in retransmission-sized slices: an unanswered request is
        // re-sent with the same id, and the server dedupes (at-most-once
        // execution; a lost reply is replayed from its reply cache). The
        // wait is a blocking scope: a pool worker parked here (async
        // invoke, redelivery) must not starve runnable local tasks.
        let result = self.inner.vprocs.blocking(|| {
            if !self.inner.config.enable_retransmission {
                waiter.wait(budget)
            } else {
                let deadline = Instant::now() + budget;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break None;
                    }
                    let slice = self.inner.config.retransmit_interval.min(deadline - now);
                    if let Some(reply) = waiter.wait(slice) {
                        break Some(reply);
                    }
                    if Instant::now() >= deadline {
                        break None;
                    }
                    self.inner
                        .obs
                        .recorder()
                        .record(KernelEvent::Retransmit { inv_id, dst: dst.0 });
                    // Non-blocking even over TCP: the transport's send
                    // pipeline enqueues to a per-peer writer, so a dead
                    // or slow destination cannot stall this retransmit
                    // slice (the frame sheds at the bounded queue).
                    let _ = self.inner.endpoint.send(request());
                }
            }
        });
        self.inner.pending.lock().remove(&inv_id);
        self.inner.inflight.lock().remove(&inv_id);
        if let Some(s) = span {
            s.finish();
        }
        self.inner
            .obs
            .histogram("invoke.remote")
            .record(now_ns().saturating_sub(start_ns));
        match result {
            Some(ReplyMsg::Invoke(status, results, from)) => (status, results, from),
            _ => {
                self.inner
                    .obs
                    .recorder()
                    .record(KernelEvent::RemoteTimeout { dst: dst.0 });
                (Status::Timeout, Vec::new(), dst)
            }
        }
    }

    // ================= Pipelined invocation support =================
    //
    // The public face is `PipelinedClient` (see `crate::pipeline`); the
    // methods here are the halves of `remote_invoke` split apart so many
    // requests can be in flight on one connection at once: a
    // non-blocking send that registers the reply waiter, and a wait that
    // can be called later — in any order across calls, because replies
    // rendezvous by `inv_id`.

    /// Sends one invocation request to `dst` without waiting for the
    /// reply. The returned ticket holds the registered waiter; complete
    /// it with [`pipeline_wait`](Self::pipeline_wait) or release it with
    /// [`pipeline_abandon`](Self::pipeline_abandon). Fails only when the
    /// transport refuses the frame outright.
    pub(crate) fn pipeline_send(
        &self,
        dst: NodeId,
        cap: Capability,
        op: &str,
        args: &[Value],
    ) -> std::result::Result<PipelineTicket, Status> {
        self.inner.metrics.bump_remote_sent();
        let start_ns = now_ns();
        // Tracing: the frame carries the *root* context (the span guard
        // cannot outlive this call), and `pipeline_wait` records the
        // `client-send` exchange span under it retroactively. The root
        // span itself closes here, so in a rendered trace it marks the
        // issue point while its children carry the durations.
        let trace = self
            .inner
            .obs
            .sampled_root_span("invoke", op)
            .map(|s| s.ctx());
        let inv_id = self.fresh_id();
        let waiter = Arc::new(Waiter::new());
        self.inner.pending.lock().insert(inv_id, waiter.clone());
        self.inner
            .inflight
            .lock()
            .insert(inv_id, (start_ns, trace.map_or(0, |c| c.trace_id)));
        let ticket = PipelineTicket {
            inv_id,
            dst,
            waiter,
            start_ns,
            trace,
        };
        if self
            .inner
            .endpoint
            .send(self.pipeline_request(&ticket, cap, op, args))
            .is_err()
        {
            self.pipeline_abandon(inv_id);
            return Err(Status::NodeUnreachable);
        }
        Ok(ticket)
    }

    /// Builds the request frame for `ticket` (also used to retransmit —
    /// same `inv_id`, so the serving kernel dedupes).
    fn pipeline_request(
        &self,
        ticket: &PipelineTicket,
        cap: Capability,
        op: &str,
        args: &[Value],
    ) -> Frame {
        let mut frame = Frame::to(
            self.inner.id,
            ticket.dst,
            Message::InvokeRequest {
                inv_id: ticket.inv_id,
                target: cap,
                operation: op.to_string(),
                args: args.to_vec(),
                reply_to: self.inner.id,
                hops: self.inner.config.hop_limit,
            },
        );
        if let Some(t) = ticket.trace {
            frame = frame.with_trace(t);
        }
        frame
    }

    /// Waits for the reply to a pipelined request, retransmitting on the
    /// configured interval exactly like `remote_invoke`. Consumes the
    /// ticket's registration; the third element is the node that
    /// actually answered (cached so a forwarding chain is paid once).
    pub(crate) fn pipeline_wait(
        &self,
        ticket: &PipelineTicket,
        cap: Capability,
        op: &str,
        args: &[Value],
        budget: Duration,
    ) -> (Status, Vec<Value>, NodeId) {
        let result = self.inner.vprocs.blocking(|| {
            if !self.inner.config.enable_retransmission {
                ticket.waiter.wait(budget)
            } else {
                let deadline = Instant::now() + budget;
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break None;
                    }
                    let slice = self.inner.config.retransmit_interval.min(deadline - now);
                    if let Some(reply) = ticket.waiter.wait(slice) {
                        break Some(reply);
                    }
                    if Instant::now() >= deadline {
                        break None;
                    }
                    self.inner.obs.recorder().record(KernelEvent::Retransmit {
                        inv_id: ticket.inv_id,
                        dst: ticket.dst.0,
                    });
                    let _ = self
                        .inner
                        .endpoint
                        .send(self.pipeline_request(ticket, cap, op, args));
                }
            }
        });
        self.pipeline_abandon(ticket.inv_id);
        let end_ns = now_ns();
        if let Some(t) = ticket.trace {
            self.inner
                .obs
                .record_span("client-send", t, ticket.start_ns, end_ns);
        }
        self.inner
            .obs
            .histogram("invoke.remote")
            .record(end_ns.saturating_sub(ticket.start_ns));
        match result {
            Some(ReplyMsg::Invoke(status, results, from)) => {
                if self.inner.config.enable_location_cache
                    && !matches!(status, Status::NoSuchObject | Status::Timeout)
                {
                    self.cache_insert(cap.name(), from);
                }
                (status, results, from)
            }
            _ => {
                self.inner
                    .obs
                    .recorder()
                    .record(KernelEvent::RemoteTimeout { dst: ticket.dst.0 });
                (Status::Timeout, Vec::new(), ticket.dst)
            }
        }
    }

    /// Unregisters a pipelined request's reply waiter (wait completed,
    /// send failed, or the pending call was dropped unharvested).
    pub(crate) fn pipeline_abandon(&self, inv_id: u64) {
        self.inner.pending.lock().remove(&inv_id);
        self.inner.inflight.lock().remove(&inv_id);
    }

    /// Best current destination guess for `name`: forwarding address,
    /// then hint cache, then the birth node baked into the name.
    pub(crate) fn pipeline_default_dst(&self, name: ObjName) -> NodeId {
        if let Some(&fwd) = self.inner.location.forwards.read().get(&name) {
            return fwd;
        }
        if self.inner.config.enable_location_cache {
            if let Some(hint) = self.inner.location.cache.lock().get(&name).copied() {
                return hint;
            }
        }
        name.birth_node()
    }

    /// The default per-exchange reply budget for pipelined calls.
    pub(crate) fn pipeline_default_budget(&self) -> Duration {
        self.inner.config.default_invoke_timeout
    }

    // ================= Location =================

    /// Broadcasts a `WhereIs` and collects answers for the locate window
    /// (cut short as soon as an active holder replies).
    fn locate_broadcast(&self, name: ObjName) -> Vec<LocationAnswer> {
        self.inner.metrics.bump_broadcast();
        self.inner
            .obs
            .recorder()
            .record(KernelEvent::WhereIsBroadcast {
                obj: name.to_u128(),
            });
        let query_id = self.fresh_id();
        // With the membership view, the wait can also end once every
        // live peer has answered (negative answers and gossip deaths
        // count), instead of always sleeping out the locate window.
        // When gossip believes *no* peer is live, keep the seed's
        // full-window wait: the verdict may be false (lossy network) and
        // a "dead" peer's answer is then the only way to find the object.
        let expected = self
            .inner
            .directory
            .as_ref()
            .map(|dir| dir.lock().expected_responders())
            .unwrap_or(0);
        let collector = if expected > 0 {
            Arc::new(QueryCollector::with_expected(expected))
        } else {
            Arc::new(QueryCollector::new())
        };
        self.inner
            .location
            .queries
            .lock()
            .insert(query_id, collector.clone());
        // Broadcast fans out as one enqueue per peer writer; an
        // unreachable node sheds its copy without delaying the others,
        // so the locate window below is pure answer-collection time.
        let _ = self.inner.endpoint.send(Frame::broadcast(
            self.inner.id,
            Message::WhereIs {
                query_id,
                name,
                reply_to: self.inner.id,
            },
        ));
        let answers = self
            .inner
            .vprocs
            .blocking(|| collector.wait(self.inner.config.locate_window));
        self.inner.location.queries.lock().remove(&query_id);
        answers
    }

    // ================= Lifecycle: checkpoint / crash / reincarnate =====

    /// Persists `slot`'s representation at its checksite; returns the
    /// durable version.
    pub(crate) fn checkpoint_slot(&self, slot: &Arc<ObjectSlot>) -> Result<u64> {
        let cs = slot.checksite();
        let image = {
            let repr = slot.repr.read();
            repr.to_image(
                &slot.type_name,
                slot.is_frozen(),
                slot.checkpoint_version() + 1,
            )
        };
        let version = self.put_checkpoint(cs.node, slot.name, &image)?;
        if let ReliabilityLevel::Replicated(k) = cs.level {
            // Best-effort replication to k additional sites: a down
            // replica does not fail the checkpoint (the checksite copy is
            // the durability contract; replicas raise availability).
            let mut peers = self.inner.endpoint.peers();
            peers.sort();
            let mut sent = 0;
            for peer in peers {
                if sent >= k {
                    break;
                }
                if peer == cs.node {
                    continue;
                }
                let _ = self.put_checkpoint(peer, slot.name, &image);
                sent += 1;
            }
            if sent < k && cs.node != self.inner.id {
                // Fall back to a local copy to honour the replica count
                // as far as possible.
                let _ = self.put_checkpoint(self.inner.id, slot.name, &image);
            }
        }
        slot.version.store(version, Ordering::Release);
        self.inner.metrics.bump_checkpoint();
        self.inner
            .obs
            .recorder()
            .record(KernelEvent::CheckpointWrite {
                obj: slot.name.to_u128(),
                version,
            });
        Ok(version)
    }

    /// Writes one checkpoint image at `site` (local store or remote
    /// checksite over the wire).
    fn put_checkpoint(&self, site: NodeId, name: ObjName, image: &ObjectImage) -> Result<u64> {
        if site == self.inner.id {
            let version = self.inner.store.put(name, &image.encode_to_bytes())?;
            self.dir_register(name, self.inner.id, DirRegisterKind::Checkpoint);
            return Ok(version);
        }
        let req_id = self.fresh_id();
        let waiter = Arc::new(Waiter::new());
        self.inner.pending.lock().insert(req_id, waiter.clone());
        let _ = self.inner.endpoint.send(Frame::to(
            self.inner.id,
            site,
            Message::CheckpointPut {
                req_id,
                name,
                image: image.clone(),
                reply_to: self.inner.id,
            },
        ));
        let result = self
            .inner
            .vprocs
            .blocking(|| waiter.wait(self.inner.config.remote_try_timeout));
        self.inner.pending.lock().remove(&req_id);
        match result {
            Some(ReplyMsg::CkptAck(true, version)) => Ok(version),
            Some(ReplyMsg::CkptAck(false, _)) => Err(EdenError::Store(eden_store::StoreError::Io(
                format!("checksite {site} refused the checkpoint"),
            ))),
            _ => Err(EdenError::Invoke(Status::NodeUnreachable)),
        }
    }

    /// Sets the checksite of `slot` and persists it into the
    /// representation so it survives checkpoints and moves.
    pub(crate) fn set_checksite(
        &self,
        slot: &Arc<ObjectSlot>,
        node: NodeId,
        level: ReliabilityLevel,
    ) -> Result<()> {
        if slot.is_frozen() {
            return Err(EdenError::BadRequest(
                "cannot change the checksite of a frozen object".into(),
            ));
        }
        if node != self.inner.id && !self.inner.endpoint.peers().contains(&node) {
            return Err(EdenError::BadRequest(format!(
                "checksite {node} is not a known node"
            )));
        }
        *slot.checksite.lock() = Checksite { node, level };
        let mut w = Writer::new();
        w.put_u16(node.0);
        match level {
            ReliabilityLevel::Local => {
                w.put_u8(0);
                w.put_u32(0);
            }
            ReliabilityLevel::Replicated(k) => {
                w.put_u8(1);
                w.put_u32(k as u32);
            }
        }
        slot.repr.write().put(CHECKSITE_SEGMENT, w.finish());
        Ok(())
    }

    /// Parses a checksite persisted by [`Node::set_checksite`].
    fn parse_checksite(repr: &Representation, fallback: NodeId) -> Checksite {
        let Some(bytes) = repr.get(CHECKSITE_SEGMENT) else {
            return Checksite {
                node: fallback,
                level: ReliabilityLevel::Local,
            };
        };
        let mut r = Reader::new(bytes);
        let mut parse = || -> std::result::Result<Checksite, eden_wire::CodecError> {
            let node = NodeId(r.get_u16()?);
            let level = match r.get_u8()? {
                1 => ReliabilityLevel::Replicated(r.get_u32()? as usize),
                _ => ReliabilityLevel::Local,
            };
            Ok(Checksite { node, level })
        };
        parse().unwrap_or(Checksite {
            node: fallback,
            level: ReliabilityLevel::Local,
        })
    }

    /// Requests a crash (§4.4): active state is destroyed once running
    /// invocations complete; queued invocations reincarnate the object
    /// from its last checkpoint if one exists.
    pub(crate) fn request_crash(&self, slot: &Arc<ObjectSlot>) {
        let mut coord = slot.coord.lock();
        coord.crash_requested = true;
        if coord.running == 0 && coord.status == ObjStatus::Active {
            coord.status = ObjStatus::Crashed;
            drop(coord);
            self.finish_crash(slot);
        }
    }

    /// Requests permanent destruction.
    pub(crate) fn request_destroy(&self, slot: &Arc<ObjectSlot>) {
        let mut coord = slot.coord.lock();
        coord.destroy_requested = true;
        if coord.running == 0 && coord.status == ObjStatus::Active {
            coord.status = ObjStatus::Crashed;
            drop(coord);
            self.finish_destroy(slot);
        }
    }

    /// Destroys active state: the crash primitive's teardown half.
    fn finish_crash(&self, slot: &Arc<ObjectSlot>) {
        self.inner.metrics.bump_crash();
        self.inner.obs.recorder().record(KernelEvent::Crash {
            obj: slot.name.to_u128(),
        });
        slot.short.teardown();
        self.inner.objects.write().remove(&slot.name);
        // Retract the holder registration before any reincarnation below
        // re-registers it (per-peer FIFO delivery keeps the order).
        self.dir_register(slot.name, self.inner.id, DirRegisterKind::Drop);
        let queued = self.drain_queue(&mut slot.coord.lock());
        if queued.is_empty() {
            return;
        }
        // The single-level-store illusion: invocations that arrived
        // during the crash reincarnate the object if it checkpointed.
        if let Some(new_slot) = self.activate_passive_local(slot.name) {
            for pending in queued {
                self.enqueue(&new_slot, pending);
            }
        } else {
            for pending in queued {
                let trace = pending.trace;
                self.send_reply(pending.sink, Status::ObjectCrashed, Vec::new(), trace);
            }
        }
    }

    /// Destroys the object and its checkpoints everywhere we know of.
    fn finish_destroy(&self, slot: &Arc<ObjectSlot>) {
        slot.short.teardown();
        self.inner.objects.write().remove(&slot.name);
        self.inner.destroyed.lock().insert(slot.name);
        self.dir_register(slot.name, self.inner.id, DirRegisterKind::Drop);
        let _ = self.inner.store.delete(slot.name);
        let cs = slot.checksite();
        if cs.node != self.inner.id {
            let req_id = self.fresh_id();
            let _ = self.inner.endpoint.send(Frame::to(
                self.inner.id,
                cs.node,
                Message::CheckpointDelete {
                    req_id,
                    name: slot.name,
                    reply_to: self.inner.id,
                },
            ));
        }
        for pending in self.drain_queue(&mut slot.coord.lock()) {
            let trace = pending.trace;
            self.send_reply(pending.sink, Status::Destroyed, Vec::new(), trace);
        }
    }

    /// Reincarnates `name` from a locally held checkpoint, if any.
    ///
    /// Returns the (possibly still-reincarnating) slot; invocations may be
    /// queued against it immediately.
    fn activate_passive_local(&self, name: ObjName) -> Option<Arc<ObjectSlot>> {
        let image = {
            let (version, bytes) = self.inner.store.latest(name).ok()??;
            let image = ObjectImage::decode_from_bytes(&bytes).ok()?;
            (version, image)
        };
        let (version, image) = image;
        if !self.inner.registry.has(&image.type_name) {
            return None;
        }
        let slot = {
            let mut objects = self.inner.objects.write();
            if let Some(existing) = objects.get(&name) {
                return Some(existing.clone()); // Raced with another activation.
            }
            let repr = Representation::from_image(&image);
            let checksite = Self::parse_checksite(&repr, self.inner.id);
            let slot = ObjectSlot::new(
                name,
                image.type_name.clone(),
                repr,
                ObjStatus::Reincarnating,
                checksite,
            );
            slot.version.store(version, Ordering::Release);
            slot.frozen.store(image.frozen, Ordering::Release);
            objects.insert(name, slot.clone());
            slot
        };
        let node = self.clone();
        let task_slot = slot.clone();
        if self
            .inner
            .vprocs
            .submit(move || node.run_reincarnation(task_slot))
            .is_err()
        {
            // Pool saturated: back out; the object stays passive and a
            // later invocation retries the reincarnation.
            self.inner.objects.write().remove(&name);
            return None;
        }
        Some(slot)
    }

    /// Runs the reincarnation condition handler, then opens the gate for
    /// queued invocations (§4.2).
    fn run_reincarnation(&self, slot: Arc<ObjectSlot>) {
        let manager = match self.inner.registry.manager(&slot.type_name) {
            Some(m) => m,
            None => {
                self.fail_reincarnation(&slot, "type manager vanished");
                return;
            }
        };
        let cap = Capability::mint(slot.name);
        let ctx = OpCtx::new(self, &slot, cap, self.inner.id, "<reincarnate>");
        match manager.reincarnate(&ctx) {
            Ok(()) => {
                self.inner.metrics.bump_reincarnation();
                self.inner
                    .obs
                    .recorder()
                    .record(KernelEvent::Reincarnation {
                        obj: slot.name.to_u128(),
                        version: slot.checkpoint_version(),
                    });
                self.dir_register(slot.name, self.inner.id, DirRegisterKind::Active);
                let mut coord = slot.coord.lock();
                coord.status = ObjStatus::Active;
                self.pump(&slot, &mut coord);
            }
            Err(e) => {
                let status = e.into_status();
                self.fail_reincarnation(&slot, &format!("{status}"));
            }
        }
    }

    fn fail_reincarnation(&self, slot: &Arc<ObjectSlot>, reason: &str) {
        self.inner.objects.write().remove(&slot.name);
        for pending in self.drain_queue(&mut slot.coord.lock()) {
            let trace = pending.trace;
            self.send_reply(
                pending.sink,
                Status::AppError {
                    code: -2,
                    message: format!("reincarnation failed: {reason}"),
                },
                Vec::new(),
                trace,
            );
        }
    }

    // ================= Mobility (§4.3) =================

    /// Requests that a local active object move to `dst` (rights already
    /// verified by the caller: the object itself via [`OpCtx::move_to`],
    /// or [`Node::move_object`] which checks `Rights::MOVE`).
    pub(crate) fn request_move(&self, slot: &Arc<ObjectSlot>, dst: NodeId) -> Result<()> {
        if dst == self.inner.id {
            return Ok(());
        }
        if !self.inner.endpoint.peers().contains(&dst) {
            return Err(EdenError::BadRequest(format!("{dst} is not a known node")));
        }
        let mut coord = slot.coord.lock();
        if coord.status == ObjStatus::Moving || coord.pending_move.is_some() {
            return Err(EdenError::BadRequest("move already in progress".into()));
        }
        coord.pending_move = Some(dst);
        self.pump(slot, &mut coord);
        Ok(())
    }

    /// The kernel-level move operation, usable by policy objects holding
    /// `Rights::MOVE` on the target (§4.3: "some objects may have the
    /// ability to make location decisions for other objects").
    pub fn move_object(&self, cap: Capability, dst: NodeId) -> Result<()> {
        if !cap.permits(eden_capability::Rights::MOVE) {
            return Err(EdenError::Invoke(Status::RightsViolation {
                required: eden_capability::Rights::MOVE,
                held: cap.rights(),
            }));
        }
        let slot =
            self.inner
                .objects
                .read()
                .get(&cap.name())
                .cloned()
                .ok_or(EdenError::BadRequest(
                    "move_object requires the object to be active on this node".into(),
                ))?;
        self.request_move(&slot, dst)
    }

    /// Executes a quiesced move: ship the image, then hand over the
    /// queue and leave a forwarding address.
    fn start_move(&self, slot: Arc<ObjectSlot>, dst: NodeId) {
        let image = {
            let repr = slot.repr.read();
            repr.to_image(&slot.type_name, slot.is_frozen(), slot.checkpoint_version())
        };
        let xfer_id = self.fresh_id();
        let waiter = Arc::new(Waiter::new());
        self.inner.pending.lock().insert(xfer_id, waiter.clone());
        let _ = self.inner.endpoint.send(Frame::to(
            self.inner.id,
            dst,
            Message::MoveTransfer {
                xfer_id,
                name: slot.name,
                image,
                reply_to: self.inner.id,
            },
        ));
        let ack = self
            .inner
            .vprocs
            .blocking(|| waiter.wait(self.inner.config.move_timeout));
        self.inner.pending.lock().remove(&xfer_id);
        match ack {
            Some(ReplyMsg::MoveAck(true, _reason)) => {
                self.inner.metrics.bump_move_out();
                self.inner.obs.recorder().record(KernelEvent::MoveOut {
                    obj: slot.name.to_u128(),
                    dst: dst.0,
                });
                slot.short.teardown();
                self.inner.objects.write().remove(&slot.name);
                self.inner.location.forwards.write().insert(slot.name, dst);
                self.cache_insert(slot.name, dst);
                let queued = self.drain_queue(&mut slot.coord.lock());
                for pending in queued {
                    match pending.sink {
                        ReplySink::Remote { inv_id, reply_to } => {
                            self.inner.metrics.bump_forward();
                            self.inner.obs.recorder().record(KernelEvent::Forward {
                                obj: slot.name.to_u128(),
                                dst: dst.0,
                            });
                            let mut frame = Frame::to(
                                self.inner.id,
                                dst,
                                Message::InvokeRequest {
                                    inv_id,
                                    target: pending.presented,
                                    operation: pending.operation,
                                    args: pending.args,
                                    reply_to,
                                    hops: self.inner.config.hop_limit,
                                },
                            );
                            if let Some(t) = pending.trace {
                                frame = frame.with_trace(t);
                            }
                            let _ = self.inner.endpoint.send(frame);
                        }
                        ReplySink::Local(waiter) => {
                            let node = self.clone();
                            let task_waiter = waiter.clone();
                            if self
                                .inner
                                .vprocs
                                .submit(move || {
                                    let (status, results, _from) = node.remote_invoke(
                                        dst,
                                        pending.presented,
                                        &pending.operation,
                                        &pending.args,
                                        node.inner.config.remote_try_timeout,
                                        pending.trace,
                                    );
                                    task_waiter.complete((status, results));
                                })
                                .is_err()
                            {
                                waiter.complete((Status::Overloaded, Vec::new()));
                            }
                        }
                        ReplySink::Discard => {}
                    }
                }
            }
            other => {
                // Rejected or timed out: resume in place. The rejection
                // reason is recorded for introspection.
                if let Some(ReplyMsg::MoveAck(false, reason)) = other {
                    *self.inner.last_move_rejection.lock() = Some(reason);
                }
                let mut coord = slot.coord.lock();
                coord.status = ObjStatus::Active;
                coord.pending_move = None;
                self.pump(&slot, &mut coord);
            }
        }
    }

    /// The reason the most recent outbound move was rejected, if any —
    /// diagnostic surface for policy objects and tests.
    pub fn last_move_rejection(&self) -> Option<String> {
        self.inner.last_move_rejection.lock().clone()
    }

    /// Installs an object shipped to us by a move.
    fn install_moved(&self, src: NodeId, xfer_id: u64, name: ObjName, image: ObjectImage) {
        let reject = |reason: &str| {
            let _ = self.inner.endpoint.send(Frame::to(
                self.inner.id,
                src,
                Message::MoveAck {
                    xfer_id,
                    accepted: false,
                    reason: reason.to_string(),
                },
            ));
        };
        if !self.inner.registry.has(&image.type_name) {
            reject(&format!("type '{}' not registered here", image.type_name));
            return;
        }
        let slot = {
            let mut objects = self.inner.objects.write();
            if objects.contains_key(&name) {
                drop(objects);
                reject("object already present");
                return;
            }
            let repr = Representation::from_image(&image);
            let checksite = Self::parse_checksite(&repr, self.inner.id);
            let slot = ObjectSlot::new(
                name,
                image.type_name.clone(),
                repr,
                ObjStatus::Reincarnating,
                checksite,
            );
            slot.version.store(image.version, Ordering::Release);
            slot.frozen.store(image.frozen, Ordering::Release);
            objects.insert(name, slot.clone());
            slot
        };
        // The object's short-term state is rebuilt from scratch on the new
        // node: run the reincarnation condition handler.
        let manager = self
            .inner
            .registry
            .manager(&slot.type_name)
            .expect("checked above");
        let cap = Capability::mint(name);
        let ctx = OpCtx::new(self, &slot, cap, src, "<reincarnate>");
        match manager.reincarnate(&ctx) {
            Ok(()) => {
                self.inner.metrics.bump_move_in();
                self.inner.obs.recorder().record(KernelEvent::MoveIn {
                    obj: name.to_u128(),
                    src: src.0,
                });
                // If we had previously moved this object away, the old
                // forwarding entry is now wrong.
                self.inner.location.forwards.write().remove(&name);
                self.dir_register(name, self.inner.id, DirRegisterKind::Active);
                let _ = self.inner.endpoint.send(Frame::to(
                    self.inner.id,
                    src,
                    Message::MoveAck {
                        xfer_id,
                        accepted: true,
                        reason: String::new(),
                    },
                ));
                let mut coord = slot.coord.lock();
                coord.status = ObjStatus::Active;
                self.pump(&slot, &mut coord);
            }
            Err(e) => {
                self.inner.objects.write().remove(&name);
                reject(&format!("reincarnation failed: {}", e.into_status()));
            }
        }
    }

    // ================= Frozen objects (§4.3) =================

    /// Freezes `slot`: representation becomes immutable, a frozen
    /// checkpoint is taken, and replicas may be cached elsewhere.
    pub(crate) fn freeze_slot(&self, slot: &Arc<ObjectSlot>) -> Result<u64> {
        slot.frozen.store(true, Ordering::Release);
        self.checkpoint_slot(slot)
    }

    /// Fetches a frozen object's representation and installs a local
    /// replica, so subsequent invocations run locally (§4.3: "Such an
    /// object can be replicated and cached at several sites in order to
    /// save the overhead of remote invocations").
    ///
    /// Requires `Rights::READ`: a replica is a readable copy of the
    /// whole representation, so a capability that cannot read the
    /// object must not be able to pull its bytes across the network.
    pub fn cache_replica(&self, cap: Capability) -> Result<()> {
        if !cap.permits(Rights::READ) {
            self.inner.metrics.bump_rights_violation();
            return Err(EdenError::Invoke(Status::RightsViolation {
                required: Rights::READ,
                held: cap.rights(),
            }));
        }
        let name = cap.name();
        if let Some(slot) = self.inner.objects.read().get(&name) {
            return if slot.is_frozen() {
                Ok(()) // Already local (home or replica).
            } else {
                Err(EdenError::BadRequest(
                    "object is local and not frozen".into(),
                ))
            };
        }
        // Find the holder.
        let mut holder = self.inner.location.cache.lock().get(&name).copied();
        if holder.is_none() {
            let peers = self.inner.endpoint.peers();
            let birth = name.birth_node();
            if peers.contains(&birth) {
                holder = Some(birth);
            }
        }
        let answers;
        let candidates: Vec<NodeId> = match holder {
            Some(h) => vec![h],
            None => {
                answers = self.locate_broadcast(name);
                answers.iter().map(|a| a.holder).collect()
            }
        };
        for h in candidates {
            let req_id = self.fresh_id();
            let waiter = Arc::new(Waiter::new());
            self.inner.pending.lock().insert(req_id, waiter.clone());
            let _ = self.inner.endpoint.send(Frame::to(
                self.inner.id,
                h,
                Message::ReplicaRequest {
                    req_id,
                    name,
                    reply_to: self.inner.id,
                },
            ));
            let result = waiter.wait(self.inner.config.remote_try_timeout);
            self.inner.pending.lock().remove(&req_id);
            if let Some(ReplyMsg::Replica(Some(image))) = result {
                if !image.frozen {
                    return Err(EdenError::BadRequest("object is not frozen".into()));
                }
                if !self.inner.registry.has(&image.type_name) {
                    return Err(EdenError::UnknownType(image.type_name));
                }
                let repr = Representation::from_image(&image);
                let slot =
                    ObjectSlot::new_replica(name, image.type_name.clone(), repr, image.version, h);
                self.inner.objects.write().insert(name, slot);
                self.inner.metrics.bump_replica();
                return Ok(());
            }
        }
        Err(EdenError::Invoke(Status::NoSuchObject))
    }

    /// Activates a passive object *on this node*, pulling its latest
    /// checkpoint from whichever nodes hold one (§4.4: "the checksite
    /// node that is responsible for maintaining an object's long-term
    /// state need not be the node responsible for supporting its active
    /// execution"). Picks the highest version among the answering
    /// holders. Fails if the object is already active anywhere or no
    /// checkpoint can be found.
    ///
    /// Requires `Rights::MOVE`, matching [`Node::move_object`]:
    /// activation decides *where* the object runs, which §4.3 reserves
    /// to holders of the location-decision right.
    pub fn activate_here(&self, cap: Capability) -> Result<()> {
        if !cap.permits(Rights::MOVE) {
            self.inner.metrics.bump_rights_violation();
            return Err(EdenError::Invoke(Status::RightsViolation {
                required: Rights::MOVE,
                held: cap.rights(),
            }));
        }
        let name = cap.name();
        if self.inner.objects.read().contains_key(&name) {
            return Ok(()); // Already active here.
        }
        // Try the local store first.
        if self.activate_passive_local(name).is_some() {
            return Ok(());
        }
        let answers = self.locate_broadcast(name);
        if answers.iter().any(|a| a.state == HeldState::Active) {
            return Err(EdenError::BadRequest(
                "object is active elsewhere; use move_object instead".into(),
            ));
        }
        // Fetch from every passive holder; keep the newest image.
        let mut best: Option<ObjectImage> = None;
        for answer in answers.iter().filter(|a| a.state == HeldState::Passive) {
            let req_id = self.fresh_id();
            let waiter = Arc::new(Waiter::new());
            self.inner.pending.lock().insert(req_id, waiter.clone());
            let _ = self.inner.endpoint.send(Frame::to(
                self.inner.id,
                answer.holder,
                Message::CheckpointFetch {
                    req_id,
                    name,
                    reply_to: self.inner.id,
                },
            ));
            let result = waiter.wait(self.inner.config.remote_try_timeout);
            self.inner.pending.lock().remove(&req_id);
            if let Some(ReplyMsg::CkptData(Some(image))) = result {
                if best
                    .as_ref()
                    .map(|b| image.version > b.version)
                    .unwrap_or(true)
                {
                    best = Some(image);
                }
            }
        }
        let Some(image) = best else {
            return Err(EdenError::Invoke(Status::NoSuchObject));
        };
        if !self.inner.registry.has(&image.type_name) {
            return Err(EdenError::UnknownType(image.type_name));
        }
        // Persist the fetched image locally so this node can answer
        // passive queries and re-reincarnate after its own crashes.
        self.inner.store.put(name, &image.encode_to_bytes())?;
        match self.activate_passive_local(name) {
            Some(_) => Ok(()),
            None => Err(EdenError::Invoke(Status::NoSuchObject)),
        }
    }

    /// A point-in-time description of one locally active object.
    pub fn object_info(&self, name: ObjName) -> Option<ObjectInfo> {
        let slot = self.inner.objects.read().get(&name).cloned()?;
        let (queued, running) = {
            let coord = slot.coord.lock();
            (coord.queue.len(), coord.running)
        };
        let data_size = slot.repr.read().data_size();
        Some(ObjectInfo {
            name,
            type_name: slot.type_name.clone(),
            status: slot.status(),
            frozen: slot.is_frozen(),
            replica: slot.is_replica(),
            checkpoint_version: slot.checkpoint_version(),
            checksite: slot.checksite().node,
            data_size,
            queued_invocations: queued,
            running_invocations: running,
        })
    }

    // ================= Liveness =================

    /// Pings `node`; `true` if it answered within `timeout`.
    pub fn ping(&self, node: NodeId, timeout: Duration) -> bool {
        let token = self.fresh_id();
        let waiter = Arc::new(Waiter::new());
        self.inner.pending.lock().insert(token, waiter.clone());
        let _ = self
            .inner
            .endpoint
            .send(Frame::to(self.inner.id, node, Message::Ping { token }));
        let result = waiter.wait(timeout);
        self.inner.pending.lock().remove(&token);
        matches!(result, Some(ReplyMsg::Pong))
    }

    /// Stops the receive loop, tears down behaviors, drains the
    /// virtual-processor pool, and detaches from the network.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.obs.recorder().record(KernelEvent::NodeShutdown);
        if let Some(h) = self.inner.watchdog_thread.lock().take() {
            let _ = h.join();
        }
        self.inner.endpoint.shutdown();
        if let Some(h) = self.inner.recv_thread.lock().take() {
            let _ = h.join();
        }
        // Teardown before the pool drain: it wakes behaviors (and their
        // port waits), so pool tasks blocked on object state can finish.
        for slot in self.inner.objects.read().values() {
            slot.short.teardown();
        }
        self.inner.vprocs.shutdown();
    }

    // ================= The stall watchdog =================

    /// The body of the `eden-watchdog-<id>` thread: every
    /// [`NodeConfig::watchdog_interval`] it probes the three places an
    /// invocation can silently wedge — the virtual-processor pool (a
    /// busy worker or an un-dequeued head-of-queue task past the stall
    /// deadline), the transport's per-peer writer queues (non-draining
    /// past the same deadline), and the in-flight remote invocations
    /// (older than the slow-invocation budget). Each finding becomes a
    /// typed flight-recorder event plus a bump of `watchdog.stalls`,
    /// and the batch is rendered into a diagnostic snapshot scrapeable
    /// via the node object's `get_watchdog` operation.
    fn watchdog_loop(&self) {
        let interval = self.inner.config.watchdog_interval;
        let deadline_ns = self.inner.config.watchdog_stall_deadline.as_nanos() as u64;
        let budget_ns = self.inner.config.slow_invocation_budget.as_nanos() as u64;
        // Per-finding report times, so a persistent stall re-reports
        // once per deadline period instead of once per probe tick.
        let mut last_report: HashMap<(u8, u64), u64> = HashMap::new();
        loop {
            // Sleep in small slices so shutdown joins promptly even
            // with a long probe interval.
            let mut slept = Duration::ZERO;
            while slept < interval {
                if self.inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let nap = (interval - slept).min(Duration::from_millis(10));
                std::thread::sleep(nap);
                slept += nap;
            }
            let now = now_ns();
            let mut due = |key: (u8, u64)| match last_report.get(&key) {
                Some(&t) if now.saturating_sub(t) < deadline_ns => false,
                _ => {
                    last_report.insert(key, now);
                    true
                }
            };
            let mut stalls: Vec<KernelEvent> = Vec::new();
            let probe = self.inner.vprocs.stall_probe();
            if let Some((wid, age)) = probe.busiest {
                if age >= deadline_ns && due((0, wid as u64)) {
                    stalls.push(KernelEvent::VprocStall {
                        worker: wid,
                        age_ms: age / 1_000_000,
                        queued: probe.queued as u64,
                    });
                }
            }
            if probe.oldest_wait_ns >= deadline_ns && due((1, 0)) {
                // `u16::MAX` is the reserved "no particular worker"
                // marker: the queue head itself is not being picked up.
                stalls.push(KernelEvent::VprocStall {
                    worker: u16::MAX,
                    age_ms: probe.oldest_wait_ns / 1_000_000,
                    queued: probe.queued as u64,
                });
            }
            for (dst, age, queued) in self.inner.endpoint.writer_probe() {
                if age >= deadline_ns && due((2, dst.0 as u64)) {
                    stalls.push(KernelEvent::WriterStall {
                        dst: dst.0,
                        age_ms: age / 1_000_000,
                        queued,
                    });
                }
            }
            {
                let inflight = self.inner.inflight.lock();
                for (&inv_id, &(start_ns, trace)) in inflight.iter() {
                    let age = now.saturating_sub(start_ns);
                    if age >= budget_ns && due((3, inv_id)) {
                        stalls.push(KernelEvent::SlowInvocation {
                            inv_id,
                            age_ms: age / 1_000_000,
                            trace,
                        });
                    }
                }
            }
            if stalls.is_empty() {
                continue;
            }
            self.inner
                .obs
                .counter("watchdog.stalls")
                .add(stalls.len() as u64);
            for e in &stalls {
                self.inner.obs.recorder().record(*e);
            }
            *self.inner.watchdog_snapshot.lock() = Some(self.watchdog_snapshot_text(&stalls));
        }
    }

    /// Renders one watchdog finding batch plus the node state needed to
    /// interpret it: thread names, pool and writer-queue depths, the
    /// oldest in-flight invocation, the oldest retained span, and the
    /// gossip membership view.
    fn watchdog_snapshot_text(&self, stalls: &[KernelEvent]) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let id = self.inner.id;
        let _ = writeln!(s, "watchdog snapshot node={id} at_ns={}", now_ns());
        for e in stalls {
            let _ = writeln!(s, "  stall: {e}");
        }
        let v = self.inner.vprocs.stats();
        let _ = writeln!(
            s,
            "  threads: eden-recv-{id} eden-watchdog-{id} eden-vproc-{id}-[0..{}]",
            v.live
        );
        let _ = writeln!(
            s,
            "  vprocs: queued={} live={} blocked={} executed={} rejected={}",
            v.queued, v.live, v.blocked, v.executed, v.rejected
        );
        for (dst, age, queued) in self.inner.endpoint.writer_probe() {
            let _ = writeln!(
                s,
                "  writer-queue dst={dst}: {queued} frames, idle {} ms",
                age / 1_000_000
            );
        }
        {
            let inflight = self.inner.inflight.lock();
            let oldest = inflight.iter().min_by_key(|(_, &(start, _))| start);
            let _ = write!(s, "  inflight: {}", inflight.len());
            if let Some((inv_id, &(start, trace))) = oldest {
                let _ = write!(
                    s,
                    ", oldest inv={inv_id} age={} ms trace={trace:#x}",
                    now_ns().saturating_sub(start) / 1_000_000
                );
            }
            let _ = writeln!(s);
        }
        if let Some(span) = self
            .inner
            .obs
            .traces()
            .spans()
            .into_iter()
            .min_by_key(|r| r.start_ns)
        {
            let _ = writeln!(
                s,
                "  oldest-span: {} trace={:#x} start_ns={}",
                span.name, span.trace_id, span.start_ns
            );
        }
        for (node, status, incarnation) in self.membership() {
            let _ = writeln!(
                s,
                "  member node={node} status={} incarnation={incarnation}",
                status.label()
            );
        }
        s
    }

    // ================= The receive loop =================

    fn recv_loop(&self) {
        // Gossip rides the receive loop (no thread of its own): the
        // state machine's timers are checked between frames, at most
        // every half protocol period and at least every recv timeout.
        let tick_every = (self.inner.config.gossip_interval / 2)
            .clamp(Duration::from_millis(5), Duration::from_millis(50));
        let mut next_gossip = Instant::now();
        loop {
            if self.inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            if self.inner.directory.is_some() {
                let now = Instant::now();
                if now >= next_gossip {
                    let out = self
                        .inner
                        .directory
                        .as_ref()
                        .map(|dir| dir.lock().tick(now));
                    if let Some(out) = out {
                        self.apply_dir_output(out);
                    }
                    next_gossip = now + tick_every;
                }
            }
            match self
                .inner
                .endpoint
                .recv_batch(RECV_BATCH_MAX, Duration::from_millis(50))
            {
                Ok(batch) if batch.is_empty() => continue,
                Ok(batch) => self.handle_frame_batch(batch),
                Err(_) => return,
            }
        }
    }

    /// Handles one receive-loop batch. Frames are processed inline in
    /// arrival order (so replies, gossip and location traffic keep their
    /// ordering), but invocation dispatches that `pump` would have
    /// submitted one-by-one are collected in [`DISPATCH_BUF`] and handed
    /// to the pool as a single [`VirtualProcessorPool::submit_batch`] —
    /// one lock/notify for the whole batch instead of one per frame.
    fn handle_frame_batch(&self, frames: Vec<Frame>) {
        if frames.len() == 1 {
            for frame in frames {
                self.handle_frame(frame);
            }
            return;
        }
        DISPATCH_BUF.with(|buf| *buf.borrow_mut() = Some(Vec::new()));
        for frame in frames {
            self.handle_frame(frame);
        }
        let deferred = DISPATCH_BUF
            .with(|buf| buf.borrow_mut().take())
            .unwrap_or_default();
        self.flush_dispatch_batch(deferred);
    }

    /// Enqueues a batch of deferred invocation dispatches in one pool
    /// transaction. A per-task `Overloaded` verdict undoes that task's
    /// dispatch bookkeeping at its coordinator (exactly what `pump` does
    /// inline on the non-batched path) and sheds the invocation with the
    /// backpressure status.
    fn flush_dispatch_batch(&self, deferred: Vec<DeferredDispatch>) {
        if deferred.is_empty() {
            return;
        }
        let mut tasks = Vec::with_capacity(deferred.len());
        let mut undo_meta = Vec::with_capacity(deferred.len());
        for d in deferred {
            tasks.push((d.job, d.dispatch_ctx));
            undo_meta.push((d.slot, d.class, d.sink, d.reply_trace));
        }
        let results = self.inner.vprocs.submit_batch(tasks);
        for (result, (slot, class, sink, reply_trace)) in results.into_iter().zip(undo_meta) {
            if result.is_ok() {
                self.inner.metrics.bump_process();
                continue;
            }
            {
                let mut coord = slot.coord.lock();
                coord.running -= 1;
                self.inner
                    .obs
                    .gauge(&format!("class.in_service.{class}"))
                    .dec();
                if let Some(n) = coord.class_in_service.get_mut(&class) {
                    *n -= 1;
                    if *n == 0 {
                        coord.class_in_service.remove(&class);
                    }
                }
                if coord.running == 0 {
                    slot.quiesce_cv.notify_all();
                }
            }
            self.send_reply(sink, Status::Overloaded, Vec::new(), reply_trace);
        }
    }

    fn complete_pending(&self, id: u64, msg: ReplyMsg) {
        let waiter = self.inner.pending.lock().get(&id).cloned();
        if let Some(w) = waiter {
            w.complete(msg);
        }
    }

    fn handle_frame(&self, frame: Frame) {
        let src = frame.src;
        let trace = frame.trace;
        match frame.msg {
            Message::InvokeRequest {
                inv_id,
                target,
                operation,
                args,
                reply_to,
                hops,
            } => self.handle_invoke_request(inv_id, target, operation, args, reply_to, hops, trace),
            Message::InvokeReply {
                inv_id,
                status,
                results,
            } => {
                // Close the trace on the requester's side: a point span
                // marking when the reply reached this kernel.
                if let Some(ctx) = trace {
                    let t = now_ns();
                    self.inner.obs.record_span("reply", ctx, t, t);
                }
                self.complete_pending(inv_id, ReplyMsg::Invoke(status, results, src))
            }
            Message::WhereIs {
                query_id,
                name,
                reply_to,
            } => {
                let state = if let Some(slot) = self.inner.objects.read().get(&name) {
                    Some(if slot.is_replica() {
                        HeldState::FrozenReplica
                    } else {
                        HeldState::Active
                    })
                } else if self.inner.location.forwards.read().contains_key(&name) {
                    // Moved away: the checkpoint here is the checksite
                    // copy of an object active elsewhere, not a passive
                    // object.
                    None
                } else if matches!(self.inner.store.latest(name), Ok(Some(_))) {
                    Some(HeldState::Passive)
                } else {
                    None
                };
                // With the directory on, a miss is still an *answer*
                // (`NotHeld`): the querier's collector can then complete
                // as soon as every live peer has spoken instead of
                // sleeping out the locate window.
                let state = match state {
                    Some(s) => Some(s),
                    None if self.inner.directory.is_some() => Some(HeldState::NotHeld),
                    None => None,
                };
                if let Some(state) = state {
                    let _ = self.inner.endpoint.send(Frame::to(
                        self.inner.id,
                        reply_to,
                        Message::HereIs {
                            query_id,
                            name,
                            state,
                        },
                    ));
                }
            }
            Message::HereIs {
                query_id,
                name,
                state,
            } => {
                if state == HeldState::Active {
                    self.cache_insert(name, src);
                }
                let collector = self.inner.location.queries.lock().get(&query_id).cloned();
                if let Some(c) = collector {
                    if state == HeldState::NotHeld {
                        c.add_negative();
                    } else {
                        c.add(LocationAnswer { holder: src, state });
                    }
                }
            }
            Message::MoveTransfer {
                xfer_id,
                name,
                image,
                reply_to,
            } => {
                let node = self.clone();
                if self
                    .inner
                    .vprocs
                    .submit(move || node.install_moved(reply_to, xfer_id, name, image))
                    .is_err()
                {
                    // Refuse the transfer; the source resumes in place.
                    let _ = self.inner.endpoint.send(Frame::to(
                        self.inner.id,
                        reply_to,
                        Message::MoveAck {
                            xfer_id,
                            accepted: false,
                            reason: "node overloaded".to_string(),
                        },
                    ));
                }
            }
            Message::MoveAck {
                xfer_id,
                accepted,
                reason,
            } => self.complete_pending(xfer_id, ReplyMsg::MoveAck(accepted, reason)),
            Message::ReplicaRequest {
                req_id,
                name,
                reply_to,
            } => {
                let image = self.inner.objects.read().get(&name).and_then(|slot| {
                    if slot.is_frozen() {
                        let repr = slot.repr.read();
                        Some(repr.to_image(&slot.type_name, true, slot.checkpoint_version()))
                    } else {
                        None
                    }
                });
                let _ = self.inner.endpoint.send(Frame::to(
                    self.inner.id,
                    reply_to,
                    Message::ReplicaPush {
                        req_id,
                        name,
                        image,
                    },
                ));
            }
            Message::ReplicaPush { req_id, image, .. } => {
                self.complete_pending(req_id, ReplyMsg::Replica(image))
            }
            Message::CheckpointPut {
                req_id,
                name,
                image,
                reply_to,
            } => {
                let result = self.inner.store.put(name, &image.encode_to_bytes());
                let (ok, version) = match result {
                    Ok(v) => (true, v),
                    Err(_) => (false, 0),
                };
                let _ = self.inner.endpoint.send(Frame::to(
                    self.inner.id,
                    reply_to,
                    Message::CheckpointAck {
                        req_id,
                        ok,
                        version,
                    },
                ));
            }
            Message::CheckpointAck {
                req_id,
                ok,
                version,
            } => self.complete_pending(req_id, ReplyMsg::CkptAck(ok, version)),
            Message::CheckpointFetch {
                req_id,
                name,
                reply_to,
            } => {
                let image = self
                    .inner
                    .store
                    .latest(name)
                    .ok()
                    .flatten()
                    .and_then(|(_, bytes)| ObjectImage::decode_from_bytes(&bytes).ok());
                let _ = self.inner.endpoint.send(Frame::to(
                    self.inner.id,
                    reply_to,
                    Message::CheckpointData {
                        req_id,
                        name,
                        image,
                    },
                ));
            }
            Message::CheckpointData { req_id, image, .. } => {
                self.complete_pending(req_id, ReplyMsg::CkptData(image))
            }
            Message::CheckpointDelete {
                req_id,
                name,
                reply_to,
            } => {
                let ok = self.inner.store.delete(name).is_ok();
                self.inner.destroyed.lock().insert(name);
                let _ = self.inner.endpoint.send(Frame::to(
                    self.inner.id,
                    reply_to,
                    Message::CheckpointAck {
                        req_id,
                        ok,
                        version: 0,
                    },
                ));
            }
            Message::Ping { token } => {
                let _ = self.inner.endpoint.send(Frame::to(
                    self.inner.id,
                    src,
                    Message::Pong { token },
                ));
            }
            Message::Pong { token } => self.complete_pending(token, ReplyMsg::Pong),
            Message::GossipPing {
                seq,
                reply_to,
                updates,
            } => {
                if let Some(dir) = &self.inner.directory {
                    let out = dir
                        .lock()
                        .handle_ping(src, seq, reply_to, &updates, Instant::now());
                    self.apply_dir_output(out);
                }
            }
            Message::GossipAck { seq, updates } => {
                if let Some(dir) = &self.inner.directory {
                    let out = dir.lock().handle_ack(src, seq, &updates, Instant::now());
                    self.apply_dir_output(out);
                }
            }
            Message::GossipPingReq {
                seq,
                target,
                reply_to,
                updates,
            } => {
                if let Some(dir) = &self.inner.directory {
                    let out = dir.lock().handle_ping_req(
                        src,
                        seq,
                        target,
                        reply_to,
                        &updates,
                        Instant::now(),
                    );
                    self.apply_dir_output(out);
                }
            }
            Message::DirRegister { name, holder, kind } => {
                if let Some(dir) = &self.inner.directory {
                    // This node may no longer be the name's home (the
                    // registrant's ring was stale): forward one hop.
                    let forward = dir.lock().handle_register(src, name, holder, kind);
                    if let Some((dst, msg)) = forward {
                        let _ = self.inner.endpoint.send(Frame::to(self.inner.id, dst, msg));
                    }
                }
            }
            Message::DirQuery {
                query_id,
                name,
                reply_to,
            } => {
                let (holder, state) = match &self.inner.directory {
                    Some(dir) => {
                        self.inner.metrics.bump_dir_served();
                        dir.lock().answer_query(name)
                    }
                    // Directory disabled here: answer a definitive miss
                    // so the querier falls back instead of waiting.
                    None => (None, DirState::Miss),
                };
                let _ = self.inner.endpoint.send(Frame::to(
                    self.inner.id,
                    reply_to,
                    Message::DirAnswer {
                        query_id,
                        name,
                        holder,
                        state,
                    },
                ));
            }
            Message::DirAnswer {
                query_id,
                holder,
                state,
                ..
            } => self.complete_pending(query_id, ReplyMsg::DirAnswer(holder, state)),
        }
    }

    /// Services an invocation request from another kernel.
    #[allow(clippy::too_many_arguments)]
    fn handle_invoke_request(
        &self,
        inv_id: u64,
        target: Capability,
        operation: String,
        args: Vec<Value>,
        reply_to: NodeId,
        hops: u8,
        trace: Option<TraceCtx>,
    ) {
        self.inner.metrics.bump_remote_served();
        let name = target.name();
        let sink = ReplySink::Remote { inv_id, reply_to };

        // At-most-once: replay a cached reply for a retransmitted
        // request; drop retransmissions of requests still executing.
        // Check *and* admit under one lock acquisition — with pipelined
        // clients a duplicate can race the original through the receive
        // path, and only an atomic check-and-insert keeps exactly one of
        // them executing. Every admitted request reaches `send_reply`
        // (which records it done and clears the marker) except the
        // forwarding path, which removes the marker itself.
        {
            let mut served = self.inner.served.lock();
            let key = (reply_to, inv_id);
            if let Some((status, results)) = served.done.get(&key).cloned() {
                drop(served);
                let _ = self.inner.endpoint.send(Frame::to(
                    self.inner.id,
                    reply_to,
                    Message::InvokeReply {
                        inv_id,
                        status,
                        results,
                    },
                ));
                return;
            }
            if !served.in_progress.insert(key) {
                return;
            }
        }

        // Remote telemetry scrape of this kernel: no slot exists for
        // the sentinel name, so answer before the object-table lookup.
        // The scrape enters the same at-most-once bookkeeping as an
        // ordinary invocation — `send_reply` records it done — so a
        // retransmitted scrape replays the cached reply instead of
        // re-executing and double-counting scrape-side metrics.
        if name == node_object_name(self.inner.id) {
            let (status, results) = self.serve_node_object(target, &operation, &args);
            self.send_reply(sink, status, results, trace);
            return;
        }

        let slot = self.inner.objects.read().get(&name).cloned();
        let slot = match slot {
            Some(s) => Some(s),
            None => {
                if self.inner.destroyed.lock().contains(&name) {
                    self.send_reply(sink, Status::Destroyed, Vec::new(), trace);
                    return;
                }
                // A forwarding address wins over a local checkpoint: the
                // checkpoint at the old checksite must not resurrect an
                // object that is active elsewhere.
                if self.inner.location.forwards.read().contains_key(&name) {
                    None
                } else {
                    self.activate_passive_local(name)
                }
            }
        };
        if let Some(slot) = slot {
            match self.validate(&slot, target, &operation, &args, sink, trace) {
                Ok(pending) => self.enqueue(&slot, pending),
                Err(status) => self.send_reply(
                    ReplySink::Remote { inv_id, reply_to },
                    status,
                    Vec::new(),
                    trace,
                ),
            }
            return;
        }
        // Forwarding address from a past move?
        if let Some(&fwd) = self.inner.location.forwards.read().get(&name) {
            if hops > 0 {
                // Not served here after all: clear the admission marker so
                // a later retransmission can be forwarded again (the next
                // holder replies directly to `reply_to` and runs its own
                // at-most-once bookkeeping).
                self.inner
                    .served
                    .lock()
                    .in_progress
                    .remove(&(reply_to, inv_id));
                self.inner.metrics.bump_forward();
                self.inner.obs.recorder().record(KernelEvent::Forward {
                    obj: name.to_u128(),
                    dst: fwd.0,
                });
                let mut forwarded = Frame::to(
                    self.inner.id,
                    fwd,
                    Message::InvokeRequest {
                        inv_id,
                        target,
                        operation,
                        args,
                        reply_to,
                        hops: hops - 1,
                    },
                );
                if let Some(t) = trace {
                    forwarded = forwarded.with_trace(t);
                }
                let _ = self.inner.endpoint.send(forwarded);
                return;
            }
        }
        self.send_reply(sink, Status::NoSuchObject, Vec::new(), trace);
    }
}

impl core::fmt::Debug for Node {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.inner.id)
            .field("objects", &self.inner.objects.read().len())
            .finish()
    }
}
