//! Record management — the remaining system-software layer of Figure 3.
//!
//! §4 lists "filing, directory, record management, and database systems"
//! as the traditional system software to be built "using only the
//! kernel-supplied object primitives". Files ([`crate::FileType`]) and
//! directories ([`crate::DirectoryType`]) cover the first two; a
//! [`RecordFileType`] object is the third: a keyed record store with
//! ordered prefix scans.
//!
//! Unlike EFS files (which checkpoint on every version), a record file
//! batches durability: it checkpoints every `flush_every` mutations
//! (configurable at creation) and on explicit `flush`. The E3
//! measurements show why a type programmer might choose either policy —
//! exactly the per-type reliability/performance trade the paper says
//! belongs to "the implementor of an object" (§2).

use eden_capability::{Capability, Rights};
use eden_kernel::{Node, OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

fn rec_segment(key: &str) -> String {
    format!("rec:{key}")
}

/// The record-file type manager.
///
/// Operations:
///
/// | op | class | rights | effect |
/// |---|---|---|---|
/// | `insert [key, value]` | writes (1) | WRITE | upsert; returns whether the key existed |
/// | `get [key]` | reads (8) | READ | the value, or `Unit` |
/// | `delete [key]` | writes | WRITE | returns whether the key existed |
/// | `scan [prefix, limit]` | reads | READ | ordered `[(key, value)]` |
/// | `count` | reads | READ | number of records |
/// | `flush` | writes | CHECKPOINT | force a checkpoint now |
/// | `crash` | writes | OWNER | destroy active state (dirty batch is lost) |
pub struct RecordFileType;

impl RecordFileType {
    /// The registered type name.
    pub const NAME: &'static str = "efs.records";
}

/// Checkpoints when the dirty-mutation counter reaches the configured
/// batch size; the counter lives in the representation so a crash after
/// a checkpoint restarts the batch cleanly.
fn after_mutation(ctx: &OpCtx<'_>) -> Result<(), OpError> {
    let due = ctx.mutate_repr(|r| {
        let dirty = r.get_u64("dirty").unwrap_or(0) + 1;
        let batch = r.get_u64("flush_every").unwrap_or(1).max(1);
        if dirty >= batch {
            r.put_u64("dirty", 0);
            true
        } else {
            r.put_u64("dirty", dirty);
            false
        }
    })?;
    if due {
        ctx.checkpoint()?;
    }
    Ok(())
}

impl TypeManager for RecordFileType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(RecordFileType::NAME)
            .class("reads", 8)
            .class("writes", 1)
            .op("insert", "writes", Rights::WRITE)
            .op("delete", "writes", Rights::WRITE)
            .op("flush", "writes", Rights::CHECKPOINT)
            .op("crash", "writes", Rights::OWNER)
            .op("get", "reads", Rights::READ)
            .op("scan", "reads", Rights::READ)
            .op("count", "reads", Rights::READ)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        let flush_every = args.first().and_then(Value::as_u64).unwrap_or(8).max(1);
        ctx.mutate_repr(|r| {
            r.put_u64("flush_every", flush_every);
            r.put_u64("dirty", 0);
        })?;
        ctx.checkpoint()?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "insert" => {
                let key = OpCtx::str_arg(args, 0)?.to_string();
                let value = args
                    .get(1)
                    .and_then(Value::as_blob)
                    .ok_or_else(|| OpError::type_error("insert(key, blob)"))?
                    .clone();
                let existed = ctx.mutate_repr(|r| {
                    let seg = rec_segment(&key);
                    let existed = r.contains(&seg);
                    r.put(seg, value);
                    existed
                })?;
                after_mutation(ctx)?;
                Ok(vec![Value::Bool(existed)])
            }
            "get" => {
                let key = OpCtx::str_arg(args, 0)?;
                let v = ctx.read_repr(|r| r.get(&rec_segment(key)).cloned());
                Ok(vec![v.map(Value::Blob).unwrap_or(Value::Unit)])
            }
            "delete" => {
                let key = OpCtx::str_arg(args, 0)?;
                let existed = ctx.mutate_repr(|r| r.remove(&rec_segment(key)).is_some())?;
                if existed {
                    after_mutation(ctx)?;
                }
                Ok(vec![Value::Bool(existed)])
            }
            "scan" => {
                let prefix = OpCtx::str_arg(args, 0)?.to_string();
                let limit = args.get(1).and_then(Value::as_u64).unwrap_or(u64::MAX);
                let full = format!("rec:{prefix}");
                let rows: Vec<Value> = ctx.read_repr(|r| {
                    r.segments_with_prefix(&full)
                        .take(limit as usize)
                        .filter_map(|seg| {
                            let value = r.get(seg)?.clone();
                            Some(Value::List(vec![
                                Value::Str(seg[4..].to_string()),
                                Value::Blob(value),
                            ]))
                        })
                        .collect()
                });
                Ok(vec![Value::List(rows)])
            }
            "count" => {
                Ok(vec![Value::U64(ctx.read_repr(|r| {
                    r.segments_with_prefix("rec:").count() as u64
                }))])
            }
            "flush" => {
                ctx.mutate_repr(|r| r.put_u64("dirty", 0))?;
                let version = ctx.checkpoint()?;
                Ok(vec![Value::U64(version)])
            }
            "crash" => {
                // Exit/fault simulation (§4.4): dirty mutations since the
                // last batch checkpoint are lost by design.
                ctx.crash();
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Client-side sugar over a record-file capability.
#[derive(Clone)]
pub struct Records {
    node: Node,
    cap: Capability,
}

impl Records {
    /// Creates a record file on `node` checkpointing every `flush_every`
    /// mutations.
    pub fn create(node: Node, flush_every: u64) -> eden_kernel::Result<Records> {
        let cap = node.create_object(RecordFileType::NAME, &[Value::U64(flush_every)])?;
        Ok(Records { node, cap })
    }

    /// Opens an existing record file through its capability.
    pub fn open(node: Node, cap: Capability) -> Records {
        Records { node, cap }
    }

    /// The underlying capability (share to share the table).
    pub fn capability(&self) -> Capability {
        self.cap
    }

    /// Upserts; returns whether the key already existed.
    pub fn insert(&self, key: &str, value: &[u8]) -> eden_kernel::Result<bool> {
        let out = self.node.invoke(
            self.cap,
            "insert",
            &[
                Value::Str(key.to_string()),
                Value::Blob(bytes::Bytes::copy_from_slice(value)),
            ],
        )?;
        Ok(out.first().and_then(Value::as_bool).unwrap_or(false))
    }

    /// Point lookup.
    pub fn get(&self, key: &str) -> eden_kernel::Result<Option<bytes::Bytes>> {
        let out = self
            .node
            .invoke(self.cap, "get", &[Value::Str(key.to_string())])?;
        Ok(out.first().and_then(Value::as_blob).cloned())
    }

    /// Deletes; returns whether the key existed.
    pub fn delete(&self, key: &str) -> eden_kernel::Result<bool> {
        let out = self
            .node
            .invoke(self.cap, "delete", &[Value::Str(key.to_string())])?;
        Ok(out.first().and_then(Value::as_bool).unwrap_or(false))
    }

    /// Ordered prefix scan.
    pub fn scan(
        &self,
        prefix: &str,
        limit: u64,
    ) -> eden_kernel::Result<Vec<(String, bytes::Bytes)>> {
        let out = self.node.invoke(
            self.cap,
            "scan",
            &[Value::Str(prefix.to_string()), Value::U64(limit)],
        )?;
        Ok(out
            .first()
            .and_then(Value::as_list)
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        let pair = row.as_list()?;
                        Some((
                            pair.first()?.as_str()?.to_string(),
                            pair.get(1)?.as_blob()?.clone(),
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Number of records.
    pub fn count(&self) -> eden_kernel::Result<u64> {
        let out = self.node.invoke(self.cap, "count", &[])?;
        Ok(out.first().and_then(Value::as_u64).unwrap_or(0))
    }

    /// Forces a checkpoint.
    pub fn flush(&self) -> eden_kernel::Result<u64> {
        let out = self.node.invoke(self.cap, "flush", &[])?;
        Ok(out.first().and_then(Value::as_u64).unwrap_or(0))
    }
}
