// Fixture: blocking-discipline violations (scanned as
// crates/core/src/work.rs). `dispatch` submits `execute` to the pool;
// everything `execute` reaches must not block without a guard.

impl Node {
    fn dispatch(&self) {
        self.pool.submit(move || self.execute());
    }

    fn execute(&self) {
        self.step();
        std::thread::sleep(Duration::from_millis(1)); // direct, in a pool entry point
    }

    fn step(&self) {
        self.cv.wait(&mut guard); // transitive: execute -> step -> wait
    }

    fn inline_block(&self) {
        self.pool.submit(move || {
            self.done.wait_timeout(&mut slot, TIMEOUT); // lexically in the closure
        });
    }
}
