/root/repo/target/debug/deps/eden_apps-ee2899f82205eed5.d: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/monitor.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

/root/repo/target/debug/deps/eden_apps-ee2899f82205eed5: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/monitor.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

crates/apps/src/lib.rs:
crates/apps/src/calendar.rs:
crates/apps/src/counter.rs:
crates/apps/src/hierarchy.rs:
crates/apps/src/mail.rs:
crates/apps/src/monitor.rs:
crates/apps/src/policy.rs:
crates/apps/src/queue.rs:
