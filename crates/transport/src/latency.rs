//! Per-frame delivery latency models for the in-process mesh.

use rand::rngs::SmallRng;
use rand::Rng;
use std::time::Duration;

/// How long a frame spends "on the wire" before delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Immediate delivery (pure channel semantics; fastest harness mode).
    Zero,
    /// A constant delay.
    Constant(Duration),
    /// Uniformly distributed between the bounds.
    Uniform(Duration, Duration),
    /// An uncontended-Ethernet approximation: a constant access delay plus
    /// serialization time at the configured bit rate. Calibrate the
    /// constants from `eden-ethersim` runs to make the in-process mesh
    /// feel like the simulated wire.
    Ethernet {
        /// Fixed per-frame cost (propagation + interframe gap + MAC).
        access: Duration,
        /// Channel bit rate for serialization delay.
        bit_rate_bps: u64,
    },
}

impl LatencyModel {
    /// Samples the delivery delay for a frame of `payload_bytes`.
    pub fn sample(&self, payload_bytes: usize, rng: &mut SmallRng) -> Duration {
        match *self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                if hi <= lo {
                    return lo;
                }
                let span = (hi - lo).as_nanos() as u64;
                lo + Duration::from_nanos(rng.random_range(0..=span))
            }
            LatencyModel::Ethernet {
                access,
                bit_rate_bps,
            } => {
                let bits = (payload_bytes as u64 + 26) * 8;
                let ser_ns = bits.saturating_mul(1_000_000_000) / bit_rate_bps.max(1);
                access + Duration::from_nanos(ser_ns)
            }
        }
    }

    /// The 10 Mb/s Ethernet defaults used by the cluster harness when a
    /// "realistic LAN" is requested.
    pub fn lan_10mbps() -> LatencyModel {
        LatencyModel::Ethernet {
            access: Duration::from_micros(60),
            bit_rate_bps: 10_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn zero_is_zero() {
        assert_eq!(LatencyModel::Zero.sample(1500, &mut rng()), Duration::ZERO);
    }

    #[test]
    fn constant_ignores_size() {
        let m = LatencyModel::Constant(Duration::from_micros(100));
        assert_eq!(m.sample(0, &mut rng()), Duration::from_micros(100));
        assert_eq!(m.sample(10_000, &mut rng()), Duration::from_micros(100));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform(Duration::from_micros(10), Duration::from_micros(50));
        let mut r = rng();
        for _ in 0..500 {
            let d = m.sample(100, &mut r);
            assert!(d >= Duration::from_micros(10) && d <= Duration::from_micros(50));
        }
    }

    #[test]
    fn degenerate_uniform_returns_lower_bound() {
        let m = LatencyModel::Uniform(Duration::from_micros(10), Duration::from_micros(10));
        assert_eq!(m.sample(1, &mut rng()), Duration::from_micros(10));
    }

    #[test]
    fn ethernet_grows_with_frame_size() {
        let m = LatencyModel::lan_10mbps();
        let small = m.sample(64, &mut rng());
        let large = m.sample(1500, &mut rng());
        assert!(large > small);
        // 1500 bytes + 26 overhead = 12208 bits ≈ 1.22 ms on 10 Mb/s.
        assert!(large > Duration::from_micros(1200) && large < Duration::from_micros(1400));
    }
}
