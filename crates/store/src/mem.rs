//! A volatile, in-memory checkpoint store.
//!
//! Used wherever durability is not under test: kernel unit tests, latency
//! benchmarks, and as the building block behind [`FaultyStore`] and
//! [`ReplicatedStore`](crate::ReplicatedStore) composition tests.
//! Semantically identical to [`DiskStore`](crate::DiskStore) minus
//! persistence.
//!
//! [`FaultyStore`]: crate::FaultyStore

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use eden_capability::ObjName;
use parking_lot::RwLock;

use crate::{CheckpointStore, StoreError};

/// An in-memory [`CheckpointStore`].
///
/// # Examples
///
/// ```
/// use eden_store::{CheckpointStore, MemStore};
/// use eden_capability::{NameGenerator, NodeId};
///
/// let store = MemStore::new();
/// let name = NameGenerator::new(NodeId(0)).next_name();
/// let v = store.put(name, b"hello").unwrap();
/// assert_eq!(&store.latest(name).unwrap().unwrap().1[..], b"hello");
/// assert_eq!(store.versions(name).unwrap(), vec![v]);
/// ```
pub struct MemStore {
    objects: RwLock<HashMap<ObjName, BTreeMap<u64, Bytes>>>,
    /// Retain at most this many versions per object (0 = unlimited).
    retain: usize,
}

impl MemStore {
    /// Creates a store retaining every version.
    pub fn new() -> Self {
        MemStore {
            objects: RwLock::new(HashMap::new()),
            retain: 0,
        }
    }

    /// Creates a store retaining only the `retain` most recent versions of
    /// each object.
    pub fn with_retention(retain: usize) -> Self {
        MemStore {
            objects: RwLock::new(HashMap::new()),
            retain,
        }
    }

    /// Total bytes held across all versions (capacity accounting in
    /// benchmarks).
    pub fn total_bytes(&self) -> usize {
        self.objects
            .read()
            .values()
            .flat_map(|v| v.values())
            .map(Bytes::len)
            .sum()
    }
}

impl Default for MemStore {
    fn default() -> Self {
        MemStore::new()
    }
}

impl CheckpointStore for MemStore {
    fn put(&self, name: ObjName, image: &[u8]) -> Result<u64, StoreError> {
        let mut objects = self.objects.write();
        let versions = objects.entry(name).or_default();
        let next = versions.keys().next_back().map_or(1, |v| v + 1);
        versions.insert(next, Bytes::copy_from_slice(image));
        if self.retain > 0 {
            while versions.len() > self.retain {
                let oldest = *versions.keys().next().expect("nonempty");
                versions.remove(&oldest);
            }
        }
        Ok(next)
    }

    fn latest(&self, name: ObjName) -> Result<Option<(u64, Bytes)>, StoreError> {
        Ok(self
            .objects
            .read()
            .get(&name)
            .and_then(|v| v.iter().next_back().map(|(k, b)| (*k, b.clone()))))
    }

    fn get(&self, name: ObjName, version: u64) -> Result<Option<Bytes>, StoreError> {
        Ok(self
            .objects
            .read()
            .get(&name)
            .and_then(|v| v.get(&version).cloned()))
    }

    fn versions(&self, name: ObjName) -> Result<Vec<u64>, StoreError> {
        Ok(self
            .objects
            .read()
            .get(&name)
            .map(|v| v.keys().copied().collect())
            .unwrap_or_default())
    }

    fn delete(&self, name: ObjName) -> Result<(), StoreError> {
        self.objects.write().remove(&name);
        Ok(())
    }

    fn names(&self) -> Result<Vec<ObjName>, StoreError> {
        Ok(self.objects.read().keys().copied().collect())
    }

    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eden_capability::{NameGenerator, NodeId};

    fn name() -> ObjName {
        NameGenerator::with_epoch(NodeId(1), 7).next_name()
    }

    #[test]
    fn retention_drops_oldest_versions() {
        let store = MemStore::with_retention(2);
        let n = name();
        store.put(n, b"one").unwrap();
        store.put(n, b"two").unwrap();
        store.put(n, b"three").unwrap();
        assert_eq!(store.versions(n).unwrap(), vec![2, 3]);
        assert_eq!(store.get(n, 1).unwrap(), None);
        assert_eq!(&store.latest(n).unwrap().unwrap().1[..], b"three");
    }

    #[test]
    fn versions_remain_monotone_after_retention() {
        let store = MemStore::with_retention(1);
        let n = name();
        for i in 0..5u64 {
            let v = store.put(n, &[i as u8]).unwrap();
            assert_eq!(v, i + 1, "version must not reset when old ones drop");
        }
    }

    #[test]
    fn total_bytes_accounts_all_versions() {
        let store = MemStore::new();
        let n = name();
        store.put(n, &[0u8; 10]).unwrap();
        store.put(n, &[0u8; 20]).unwrap();
        assert_eq!(store.total_bytes(), 30);
    }

    #[test]
    fn delete_is_idempotent() {
        let store = MemStore::new();
        let n = name();
        store.put(n, b"x").unwrap();
        store.delete(n).unwrap();
        store.delete(n).unwrap();
        assert!(store.names().unwrap().is_empty());
    }
}
