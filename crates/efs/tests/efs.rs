//! EFS end-to-end tests: naming, versions, replication and transactions
//! over real clusters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eden_efs::{with_efs, Efs, EfsError};
use eden_kernel::Cluster;
use eden_wire::Value;

fn cluster(n: usize) -> Cluster {
    with_efs(Cluster::builder().nodes(n)).build()
}

#[test]
fn write_then_read_round_trips() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    let v = efs.write("/docs/readme", b"first").unwrap();
    assert_eq!(v, 1);
    assert_eq!(&efs.read("/docs/readme").unwrap()[..], b"first");
}

#[test]
fn versions_are_immutable_history() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/f", b"one").unwrap();
    efs.write("/f", b"two").unwrap();
    efs.write("/f", b"three").unwrap();
    assert_eq!(efs.history("/f").unwrap(), vec![1, 2, 3]);
    assert_eq!(&efs.read_version("/f", 1).unwrap()[..], b"one");
    assert_eq!(&efs.read_version("/f", 2).unwrap()[..], b"two");
    assert_eq!(&efs.read("/f").unwrap()[..], b"three");
    assert!(matches!(
        efs.read_version("/f", 99),
        Err(EfsError::NotFound(_))
    ));
}

#[test]
fn directories_nest_and_list() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/a/b/c/file1", b"x").unwrap();
    efs.write("/a/b/file2", b"y").unwrap();
    efs.mkdir_p("/a/empty").unwrap();
    let mut names = efs.list("/a").unwrap();
    names.sort();
    assert_eq!(names, vec!["b".to_string(), "empty".to_string()]);
    let mut names = efs.list("/a/b").unwrap();
    names.sort();
    assert_eq!(names, vec!["c".to_string(), "file2".to_string()]);
}

#[test]
fn lookup_missing_is_not_found() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    assert!(matches!(efs.read("/nope"), Err(EfsError::NotFound(_))));
    assert!(matches!(efs.read("/deep/nope"), Err(EfsError::NotFound(_))));
}

#[test]
fn relative_paths_are_rejected() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    assert!(matches!(efs.write("oops", b"x"), Err(EfsError::BadPath(_))));
}

#[test]
fn unbind_removes_the_name_not_the_object() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    let file = efs.create_file("/doomed").unwrap();
    efs.write("/doomed", b"still here").unwrap();
    efs.unbind("/doomed").unwrap();
    assert!(matches!(efs.read("/doomed"), Err(EfsError::NotFound(_))));
    // The object remains reachable by capability.
    let out = c.node(0).invoke(file, "read", &[]).unwrap();
    assert_eq!(
        out[0].as_blob().unwrap(),
        &bytes::Bytes::from_static(b"still here")
    );
}

#[test]
fn the_same_efs_mounts_on_every_node() {
    let c = cluster(3);
    let efs0 = Efs::format(c.node(0).clone()).unwrap();
    efs0.write("/shared/data", b"from node 0").unwrap();

    // Node 2 mounts via the root capability alone.
    let efs2 = Efs::mount(c.node(2).clone(), efs0.root());
    assert_eq!(&efs2.read("/shared/data").unwrap()[..], b"from node 0");
    efs2.write("/shared/data", b"updated from node 2").unwrap();
    assert_eq!(
        &efs0.read("/shared/data").unwrap()[..],
        b"updated from node 2"
    );
}

#[test]
fn files_survive_node_crash_via_checkpoints() {
    // Files checkpoint on every write; EFS state on a killed node's
    // store is lost, so place the file on node 1 and kill node 0 (the
    // client) instead — the file must be unaffected.
    let c = cluster(3);
    let efs1 = Efs::format(c.node(1).clone()).unwrap();
    efs1.write("/persistent", b"precious").unwrap();
    let root = efs1.root();
    c.kill(0);
    let efs2 = Efs::mount(c.node(2).clone(), root);
    assert_eq!(&efs2.read("/persistent").unwrap()[..], b"precious");
}

#[test]
fn published_blobs_are_frozen_and_cacheable() {
    let c = cluster(3);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/pub/article", b"read widely").unwrap();
    let blob = efs.publish("/pub/article").unwrap();

    // Cache a replica on node 2 and read without network traffic.
    c.node(2).cache_replica(blob).unwrap();
    let sent_before = c.node(2).metrics().remote_invocations_sent;
    let out = c.node(2).invoke(blob, "read", &[]).unwrap();
    assert_eq!(
        out[0].as_blob().unwrap(),
        &bytes::Bytes::from_static(b"read widely")
    );
    assert_eq!(
        c.node(2).metrics().remote_invocations_sent,
        sent_before,
        "replica read must be local"
    );
}

#[test]
fn transaction_commits_atomically() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    let a = efs.create_file("/acct/a").unwrap();
    let b = efs.create_file("/acct/b").unwrap();
    c.node(0)
        .invoke(
            a,
            "write",
            &[Value::Blob(bytes::Bytes::from_static(b"100"))],
        )
        .unwrap();
    c.node(0)
        .invoke(b, "write", &[Value::Blob(bytes::Bytes::from_static(b"0"))])
        .unwrap();

    let mgr = efs.transaction_manager("2pl").unwrap();
    let txn = efs.begin(mgr).unwrap();
    let a_val: i64 = String::from_utf8(txn.read(a).unwrap().to_vec())
        .unwrap()
        .parse()
        .unwrap();
    txn.write(a, format!("{}", a_val - 30).as_bytes()).unwrap();
    txn.write(b, b"30").unwrap();
    assert!(txn.commit().unwrap());

    assert_eq!(&efs.read("/acct/a").unwrap()[..], b"70");
    assert_eq!(&efs.read("/acct/b").unwrap()[..], b"30");
}

#[test]
fn aborted_transaction_leaves_no_trace() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/x", b"original").unwrap();
    let file = efs.lookup("/x").unwrap();

    let mgr = efs.transaction_manager("2pl").unwrap();
    let txn = efs.begin(mgr).unwrap();
    txn.write(file, b"should never appear").unwrap();
    // Read-your-writes inside the transaction.
    assert_eq!(&txn.read(file).unwrap()[..], b"should never appear");
    txn.abort().unwrap();

    assert_eq!(&efs.read("/x").unwrap()[..], b"original");
    assert_eq!(efs.history("/x").unwrap(), vec![1]);
}

#[test]
fn dropped_transaction_auto_aborts() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/y", b"before").unwrap();
    let file = efs.lookup("/y").unwrap();
    let mgr = efs.transaction_manager("2pl").unwrap();
    {
        let txn = efs.begin(mgr).unwrap();
        txn.write(file, b"leak?").unwrap();
        // Dropped without commit.
    }
    // The lock must be released: a fresh transaction can proceed.
    let txn = efs.begin(mgr).unwrap();
    txn.write(file, b"after").unwrap();
    assert!(txn.commit().unwrap());
    assert_eq!(&efs.read("/y").unwrap()[..], b"after");
}

/// Concurrent blind increments must serialize under 2PL: every
/// transaction commits and no update is lost.
#[test]
fn two_phase_locking_serializes_concurrent_increments() {
    let c = Arc::new(cluster(2));
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/counter", b"0").unwrap();
    let file = efs.lookup("/counter").unwrap();
    let mgr = efs.transaction_manager("2pl").unwrap();

    let workers = 4;
    let per_worker = 5;
    let mut handles = Vec::new();
    for w in 0..workers {
        let node = c.node(w % 2).clone();
        let efs_w = Efs::mount(node, efs.root());
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_worker {
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    assert!(attempts < 200, "2PL increment failed to make progress");
                    let txn = efs_w.begin(mgr).unwrap();
                    // A lock timeout anywhere aborts the transaction
                    // server-side; the client retries from the top.
                    let Ok(raw) = txn.read_for_update(file) else {
                        continue;
                    };
                    let cur: i64 = String::from_utf8(raw.to_vec()).unwrap().parse().unwrap();
                    if txn.write(file, format!("{}", cur + 1).as_bytes()).is_err() {
                        continue;
                    }
                    match txn.commit() {
                        Ok(true) => break,
                        _ => continue,
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: i64 = String::from_utf8(efs.read("/counter").unwrap().to_vec())
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(
        total,
        (workers * per_worker) as i64,
        "no update may be lost"
    );
}

/// The same workload under OCC: conflicting commits abort and retry;
/// the final state is identical, but aborts are observed.
#[test]
fn optimistic_cc_aborts_conflicts_but_converges() {
    let c = Arc::new(cluster(2));
    let efs = Efs::format(c.node(0).clone()).unwrap();
    efs.write("/counter", b"0").unwrap();
    let file = efs.lookup("/counter").unwrap();
    let mgr = efs.transaction_manager("occ").unwrap();

    let aborts = Arc::new(AtomicU64::new(0));
    let workers = 4;
    let per_worker = 5;
    let mut handles = Vec::new();
    for w in 0..workers {
        let node = c.node(w % 2).clone();
        let efs_w = Efs::mount(node, efs.root());
        let aborts = aborts.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_worker {
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    assert!(attempts < 500, "OCC increment failed to make progress");
                    let txn = efs_w.begin(mgr).unwrap();
                    let cur: i64 = String::from_utf8(txn.read(file).unwrap().to_vec())
                        .unwrap()
                        .parse()
                        .unwrap();
                    txn.write(file, format!("{}", cur + 1).as_bytes()).unwrap();
                    if txn.commit().unwrap() {
                        break;
                    }
                    aborts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: i64 = String::from_utf8(efs.read("/counter").unwrap().to_vec())
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(total, (workers * per_worker) as i64);
    // With 4 contending workers on one hot file, validation must have
    // caught at least one conflict.
    assert!(
        aborts.load(Ordering::Relaxed) > 0,
        "expected optimistic aborts under contention"
    );
}

/// Disjoint write sets commit concurrently under both disciplines.
#[test]
fn disjoint_transactions_do_not_interfere() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    for cc in ["2pl", "occ"] {
        let mgr = efs.transaction_manager(cc).unwrap();
        let f1 = efs.create_file(&format!("/{cc}/one")).unwrap();
        let f2 = efs.create_file(&format!("/{cc}/two")).unwrap();
        let t1 = efs.begin(mgr).unwrap();
        let t2 = efs.begin(mgr).unwrap();
        t1.write(f1, b"t1").unwrap();
        t2.write(f2, b"t2").unwrap();
        assert!(t1.commit().unwrap(), "{cc}: t1 must commit");
        assert!(t2.commit().unwrap(), "{cc}: t2 must commit");
        assert_eq!(&efs.read(&format!("/{cc}/one")).unwrap()[..], b"t1");
        assert_eq!(&efs.read(&format!("/{cc}/two")).unwrap()[..], b"t2");
    }
}

// ----- Record management (Figure 3's third system-software layer) -----

#[test]
fn records_insert_get_delete_round_trip() {
    use eden_efs::Records;
    let c = cluster(1);
    let table = Records::create(c.node(0).clone(), 4).unwrap();
    assert!(!table.insert("user:alice", b"researcher").unwrap());
    assert!(
        table.insert("user:alice", b"professor").unwrap(),
        "upsert reports existence"
    );
    assert_eq!(&table.get("user:alice").unwrap().unwrap()[..], b"professor");
    assert_eq!(table.get("user:ghost").unwrap(), None);
    assert!(table.delete("user:alice").unwrap());
    assert!(!table.delete("user:alice").unwrap());
    assert_eq!(table.count().unwrap(), 0);
}

#[test]
fn records_scan_is_ordered_and_prefix_bounded() {
    use eden_efs::Records;
    let c = cluster(1);
    let table = Records::create(c.node(0).clone(), 16).unwrap();
    for key in ["user:zoe", "user:amy", "user:bob", "group:staff"] {
        table.insert(key, key.as_bytes()).unwrap();
    }
    let rows = table.scan("user:", 10).unwrap();
    let keys: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, vec!["user:amy", "user:bob", "user:zoe"]);
    let rows = table.scan("user:", 2).unwrap();
    assert_eq!(rows.len(), 2, "limit respected");
    assert_eq!(table.scan("nothing:", 10).unwrap().len(), 0);
}

#[test]
fn records_batched_checkpointing_bounds_the_loss_window() {
    use eden_efs::Records;
    let c = cluster(1);
    // Flush every 3 mutations: checkpoints land after mutations 3 and 6.
    let table = Records::create(c.node(0).clone(), 3).unwrap();
    for i in 0..7 {
        table.insert(&format!("k{i}"), b"v").unwrap();
    }
    assert_eq!(table.count().unwrap(), 7);

    // Crash: the 7th insert was inside the dirty batch and is lost;
    // reincarnation restores the 6-mutation checkpoint.
    c.node(0).invoke(table.capability(), "crash", &[]).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    loop {
        let count = table.count().unwrap();
        if count == 6 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "expected the checkpointed 6 records, got {count}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(table.get("k6").unwrap(), None, "the dirty insert is gone");
    assert!(
        table.get("k5").unwrap().is_some(),
        "checkpointed data survives"
    );

    // A flush closes the window: nothing is lost across the next crash.
    table.insert("k7", b"v").unwrap();
    table.flush().unwrap();
    c.node(0).invoke(table.capability(), "crash", &[]).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while table.get("k7").unwrap().is_none() {
        assert!(std::time::Instant::now() < deadline, "flushed record lost");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

#[test]
fn records_are_shareable_across_nodes_by_capability() {
    use eden_efs::Records;
    let c = cluster(3);
    let table = Records::create(c.node(0).clone(), 2).unwrap();
    table.insert("shared", b"value").unwrap();
    let remote = Records::open(c.node(2).clone(), table.capability());
    assert_eq!(&remote.get("shared").unwrap().unwrap()[..], b"value");
    remote.insert("from-node-2", b"x").unwrap();
    assert_eq!(table.count().unwrap(), 2);
}

/// OCC must validate the *read set*: a transaction that read A and
/// writes B aborts if A changed under it (no write-write conflict
/// involved).
#[test]
fn occ_validates_reads_of_unwritten_files() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    let a = efs.create_file("/ra").unwrap();
    let b = efs.create_file("/rb").unwrap();
    c.node(0)
        .invoke(a, "write", &[Value::Blob(bytes::Bytes::from_static(b"a1"))])
        .unwrap();
    let mgr = efs.transaction_manager("occ").unwrap();

    let txn = efs.begin(mgr).unwrap();
    assert_eq!(&txn.read(a).unwrap()[..], b"a1");
    txn.write(b, b"derived from a1").unwrap();

    // A concurrent (non-transactional) writer bumps A before commit.
    c.node(0)
        .invoke(a, "write", &[Value::Blob(bytes::Bytes::from_static(b"a2"))])
        .unwrap();

    assert!(
        !txn.commit().unwrap(),
        "stale read of A must abort the commit even though only B was written"
    );
    // B was never touched.
    let out = c.node(0).invoke(b, "latest_version", &[]).unwrap();
    assert_eq!(out, vec![Value::U64(0)]);
}

/// 2PL read locks block concurrent writers until commit, so the same
/// scenario under 2PL *commits* (the interloper waits).
#[test]
fn twopl_read_locks_exclude_writers_until_commit() {
    let c = cluster(1);
    let efs = Efs::format(c.node(0).clone()).unwrap();
    let a = efs.create_file("/la").unwrap();
    c.node(0)
        .invoke(a, "write", &[Value::Blob(bytes::Bytes::from_static(b"a1"))])
        .unwrap();
    let mgr = efs.transaction_manager("2pl").unwrap();

    let txn = efs.begin(mgr).unwrap();
    assert_eq!(&txn.read(a).unwrap()[..], b"a1");

    // A competing transaction cannot take the exclusive lock while the
    // shared lock is held.
    let interloper = efs.begin(mgr).unwrap();
    let blocked = interloper.read_for_update(a);
    assert!(
        blocked.is_err(),
        "exclusive lock must be refused: {blocked:?}"
    );

    assert!(txn.commit().unwrap());
    // After commit, the lock is free.
    let retry = efs.begin(mgr).unwrap();
    assert_eq!(&retry.read_for_update(a).unwrap()[..], b"a1");
    retry.abort().unwrap();
}
