//! E4 — frozen-object replication (§4.3).
//!
//! A read-mostly dictionary is frozen and its replica cached on the
//! reading node. Expected shape: per-read latency collapses to the
//! local cost and the remote message count drops to zero — "replicated
//! and cached at several sites in order to save the overhead of remote
//! invocations."

use std::time::Instant;

use eden_transport::{LatencyModel, MeshOptions};
use eden_wire::Value;

use crate::fmt_us;
use crate::table::Table;
use crate::types::with_bench_types;

const READS: usize = 100;

/// Runs E4 and returns the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "E4 — frozen-object replica caching (100 reads from node 3)",
        &[
            "configuration",
            "mean read",
            "remote invocations",
            "frames sent",
        ],
    );

    // A LAN-shaped mesh makes the saving visible in time as well as in
    // message counts.
    let cluster = with_bench_types(eden_apps::with_apps(
        eden_kernel::Cluster::builder().nodes(4).mesh(MeshOptions {
            latency: LatencyModel::lan_10mbps(),
            loss_probability: 0.0,
            seed: 4,
        }),
    ))
    .build();

    // An EFS blob is the canonical frozen read-mostly object.
    let blob = cluster
        .node(0)
        .create_object(
            eden_efs::BlobType::NAME,
            &[Value::Blob(bytes::Bytes::from(vec![7u8; 4096]))],
        )
        .expect("create blob");

    let reader = cluster.node(3);
    let measure = |label: &str, t: &mut Table| {
        let m0 = reader.metrics();
        let n0 = reader.transport_stats();
        let start = Instant::now();
        for _ in 0..READS {
            reader.invoke(blob, "read", &[]).expect("read");
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / READS as f64;
        let dm = reader.metrics().delta(&m0);
        let dn = reader.transport_stats().delta(&n0);
        t.row(vec![
            label.to_string(),
            fmt_us(us),
            dm.remote_invocations_sent.to_string(),
            dn.frames_sent.to_string(),
        ]);
    };

    measure("remote (before caching)", &mut t);
    reader.cache_replica(blob).expect("cache replica");
    measure("cached frozen replica", &mut t);

    t.note("expected shape: after caching, remote invocations = 0 and latency ≈ local");
    cluster.shutdown();
    t
}
