//! E13 macro-benchmark: TCP small-frame throughput, seed per-frame
//! sync sends vs the coalescing send pipeline (each iteration floods a
//! 4-endpoint loopback cluster and waits for full delivery).

use criterion::{criterion_group, criterion_main, Criterion};
use eden_bench::exp_e13_transport::{baseline_throughput, pipeline_throughput};

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp_flood");
    group.bench_function("seed_per_frame", |b| b.iter(baseline_throughput));
    group.bench_function("pipeline_coalescing", |b| b.iter(pipeline_throughput));
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_transport
}
criterion_main!(benches);
