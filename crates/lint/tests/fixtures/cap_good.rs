// Fixture: L2 capability-discipline clean file (scanned as
// crates/core/src/node.rs): a rights check before the effect, a
// delegation of the capability into a checked entry point, a
// capability-free helper, and a pub(crate) fn (out of scope).

impl Node {
    pub fn replicate(&self, cap: Capability) -> Result<()> {
        if !cap.permits(Rights::READ) {
            return Err(EdenError::Invoke(Status::RightsViolation {
                required: Rights::READ,
                held: cap.rights(),
            }));
        }
        self.inner.endpoint.send(frame)?;
        Ok(())
    }

    pub fn invoke(&self, cap: Capability, op: &str) -> Result<Vec<Value>> {
        self.do_invoke(cap, op)
    }

    pub fn peers(&self) -> Vec<NodeId> {
        self.inner.endpoint.peers()
    }

    pub(crate) fn raw_send(&self, cap: Capability) {
        self.inner.endpoint.send(cap.into());
    }
}
