//! EFS directories: hierarchical naming over capabilities.
//!
//! A directory binds component names to capabilities in its capability
//! segment — naming in Eden *is* capability storage, so possession of a
//! directory capability with READ rights is what lets a user resolve
//! names under it. Directories checkpoint after every mutation: naming
//! is the root of reachability, so it must survive crashes.

use eden_capability::Rights;
use eden_kernel::{OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden_wire::Value;

/// The EFS directory type manager.
///
/// Operations:
///
/// | op | class | rights | effect |
/// |---|---|---|---|
/// | `lookup [name]` | reads (8) | READ | capability bound to a component |
/// | `list` | reads | READ | bound component names |
/// | `bind [name, cap]` | writes (1) | WRITE | bind (or rebind) a name |
/// | `unbind [name]` | writes | WRITE | remove a binding |
/// | `mkdir [name]` | writes | WRITE | create and bind a child directory |
pub struct DirectoryType;

impl DirectoryType {
    /// The registered type name.
    pub const NAME: &'static str = "efs.directory";
}

impl TypeManager for DirectoryType {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new(DirectoryType::NAME)
            .class("reads", 8)
            .class("writes", 1)
            .op("lookup", "reads", Rights::READ)
            .op("list", "reads", Rights::READ)
            .op("bind", "writes", Rights::WRITE)
            .op("unbind", "writes", Rights::WRITE)
            .op("mkdir", "writes", Rights::WRITE)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, _args: &[Value]) -> Result<(), OpError> {
        ctx.checkpoint()?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "lookup" => {
                let name = OpCtx::str_arg(args, 0)?;
                validate_component(name)?;
                let cap = ctx.read_repr(|r| r.caps().get(name));
                match cap {
                    Some(c) => Ok(vec![Value::Cap(c)]),
                    None => Err(OpError::app(404, format!("no binding for '{name}'"))),
                }
            }
            "list" => {
                let names: Vec<Value> = ctx.read_repr(|r| {
                    r.caps()
                        .slots()
                        .map(|s| Value::Str(s.to_string()))
                        .collect()
                });
                Ok(vec![Value::List(names)])
            }
            "bind" => {
                let name = OpCtx::str_arg(args, 0)?.to_string();
                validate_component(&name)?;
                let cap = OpCtx::cap_arg(args, 1)?;
                ctx.mutate_repr(|r| r.caps_mut().put(name, cap))?;
                ctx.checkpoint()?;
                Ok(vec![])
            }
            "unbind" => {
                let name = OpCtx::str_arg(args, 0)?;
                validate_component(name)?;
                let removed = ctx.mutate_repr(|r| r.caps_mut().remove(name))?;
                if removed.is_none() {
                    return Err(OpError::app(404, format!("no binding for '{name}'")));
                }
                ctx.checkpoint()?;
                Ok(vec![])
            }
            "mkdir" => {
                let name = OpCtx::str_arg(args, 0)?.to_string();
                validate_component(&name)?;
                let exists = ctx.read_repr(|r| r.caps().contains(&name));
                if exists {
                    return Err(OpError::app(409, format!("'{name}' already bound")));
                }
                let child = ctx.create_object(DirectoryType::NAME, &[])?;
                ctx.mutate_repr(|r| r.caps_mut().put(name, child))?;
                ctx.checkpoint()?;
                Ok(vec![Value::Cap(child)])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Component-name hygiene shared by every directory operation.
fn validate_component(name: &str) -> Result<(), OpError> {
    if name.is_empty() {
        return Err(OpError::type_error("component name must be nonempty"));
    }
    if name.contains('/') {
        return Err(OpError::type_error(
            "component name must not contain '/' (resolve paths client-side)",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_validation() {
        assert!(validate_component("ok").is_ok());
        assert!(validate_component("").is_err());
        assert!(validate_component("a/b").is_err());
    }
}
