//! Cross-layer observability for the Eden reproduction.
//!
//! The 1981 paper argues for mechanisms — location-transparent
//! invocation, invocation classes, checkpointing, mobility — whose costs
//! a reproduction must be able to *see* to be evaluable. This crate is
//! that layer, with three pillars:
//!
//! * **Distributed invocation tracing** — a compact [`TraceCtx`]
//!   (`trace_id`, `parent_span`, `span_id`) rides along `eden-wire`
//!   frames as an optional trailing field. Each layer opens a span
//!   ([`ObsRegistry::child_span`]) against the context it received, so a
//!   single remote invocation yields a causally linked span tree across
//!   nodes: client send → transport delivery → coordinator dispatch →
//!   operation execution → reply delivery. [`render_trace`] draws the
//!   tree.
//! * **Lock-free latency histograms** — [`Histogram`] is a log-linear
//!   (HDR-style) array of atomic buckets: recording a sample is a couple
//!   of relaxed atomic adds, snapshots are mergeable, and percentiles
//!   come out with ≤ ~6% relative error. [`Counter`] and [`Gauge`]
//!   cover monotone event counts and instantaneous levels (coordinator
//!   queue depth, per-class in-service counts).
//! * **A per-node flight recorder** — [`FlightRecorder`] keeps the last
//!   N typed [`KernelEvent`]s (crashes, reincarnations, moves, forwards,
//!   retransmissions, `WhereIs` broadcasts…) in a fixed-capacity ring,
//!   dumpable as text for postmortems after failover experiments.
//!
//! Everything hangs off a per-node [`ObsRegistry`]. All nodes in one
//! process share a single monotonic epoch ([`now_ns`]) and a single
//! flight-recorder sequence counter, so timestamps and event sequence
//! numbers from different in-process nodes are directly comparable.
//!
//! The [`export`] module is the boundary where telemetry leaves the
//! process: Prometheus text exposition for metrics, Chrome-trace
//! (Perfetto-loadable) JSON for span trees, and a JSONL event stream
//! for the flight recorder. Root-span creation is governed by a
//! configurable [`TraceSampling`] policy so tracing cost stays bounded
//! under load.

#![forbid(unsafe_code)]

pub mod clock;
pub mod critpath;
pub mod export;
pub mod hist;
pub mod metric;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use clock::now_ns;
pub use critpath::{critical_path, CriticalPath, STAGE_ORDER};
pub use export::{
    chrome_trace_json, events_jsonl, merge_metrics, parse_jsonl_line, parse_prometheus_line,
    prometheus_text, validate_json, NodeMetrics, PromSample,
};
pub use hist::{merge_snapshot_maps, Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use recorder::{FlightEvent, FlightRecorder, InboundDropReason, KernelEvent};
pub use registry::{ObsRegistry, SpanGuard, TraceSampling};
pub use trace::{intern_name, render_trace, stage, SpanRecord, TraceCollector, TraceCtx};
