//! Types, type managers and the type registry.
//!
//! §4.1: "An object's type describes the set of routines that maintain the
//! abstraction of which this object is a single instance. … On a single
//! node, the type code can be shared by several instances of the type."
//! In this reproduction a *type manager* is a Rust value implementing
//! [`TypeManager`]; one instance per node is shared by every object of
//! the type, exactly as the paper's instruction segments are.
//!
//! §4.2's invocation classes are declared in the [`TypeSpec`]: "the
//! programmer divides the invocations into an exhaustive and mutually
//! exclusive set of invocation classes, and specifies the number of
//! concurrent processes that are allowed to be servicing each class."
//! [`TypeRegistry::register`] validates exhaustiveness (every operation
//! names a declared class) and exclusivity (exactly one class per
//! operation, unique names) at registration time.
//!
//! The §5 *abstract type hierarchy* is supported through
//! [`TypeSpec::with_parent`]: "One type may be declared as a subtype of
//! another, so that the subtype inherits the operations of its supertype."
//! Operation lookup walks the parent chain; an inherited operation
//! executes the ancestor's code against the subtype instance's
//! representation.

use std::collections::HashMap;
use std::sync::Arc;

use eden_capability::Rights;
use eden_wire::{Status, Value};
use parking_lot::RwLock;

use crate::ctx::OpCtx;
use crate::error::EdenError;

/// One operation exported by a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpec {
    /// Operation name presented in invocations.
    pub name: String,
    /// The invocation class this operation belongs to.
    pub class: String,
    /// Rights the presented capability must carry.
    pub required: Rights,
}

/// One invocation class and its concurrency limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    /// Class name.
    pub name: String,
    /// Maximum invocation processes concurrently serving this class
    /// (`1` gives mutual exclusion among the class's operations).
    pub limit: usize,
}

/// The declaration of a type: name, optional supertype, classes and
/// operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeSpec {
    /// Type name (unique per registry).
    pub name: String,
    /// Supertype whose operations are inherited, if any.
    pub parent: Option<String>,
    /// Declared invocation classes.
    pub classes: Vec<ClassSpec>,
    /// Declared operations.
    pub ops: Vec<OpSpec>,
}

impl TypeSpec {
    /// Starts a spec for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TypeSpec {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares `parent` as the supertype.
    #[must_use]
    pub fn with_parent(mut self, parent: impl Into<String>) -> Self {
        self.parent = Some(parent.into());
        self
    }

    /// Declares an invocation class.
    #[must_use]
    pub fn class(mut self, name: impl Into<String>, limit: usize) -> Self {
        self.classes.push(ClassSpec {
            name: name.into(),
            limit,
        });
        self
    }

    /// Declares an operation in `class` requiring `required` rights.
    #[must_use]
    pub fn op(
        mut self,
        name: impl Into<String>,
        class: impl Into<String>,
        required: Rights,
    ) -> Self {
        self.ops.push(OpSpec {
            name: name.into(),
            class: class.into(),
            required,
        });
        self
    }

    /// Validates internal consistency (§4.2's exhaustive / mutually
    /// exclusive partition).
    pub fn validate(&self) -> Result<(), EdenError> {
        if self.name.is_empty() {
            return Err(EdenError::BadTypeSpec("type name must be nonempty".into()));
        }
        let mut class_names = std::collections::HashSet::new();
        for c in &self.classes {
            if c.limit == 0 {
                return Err(EdenError::BadTypeSpec(format!(
                    "class '{}' has limit 0; a class must admit at least one process",
                    c.name
                )));
            }
            if !class_names.insert(c.name.as_str()) {
                return Err(EdenError::BadTypeSpec(format!(
                    "duplicate class '{}'",
                    c.name
                )));
            }
        }
        let mut op_names = std::collections::HashSet::new();
        for op in &self.ops {
            if !op_names.insert(op.name.as_str()) {
                return Err(EdenError::BadTypeSpec(format!(
                    "duplicate operation '{}'",
                    op.name
                )));
            }
            if !class_names.contains(op.class.as_str()) {
                return Err(EdenError::BadTypeSpec(format!(
                    "operation '{}' names undeclared class '{}' (the partition must be exhaustive)",
                    op.name, op.class
                )));
            }
        }
        Ok(())
    }
}

/// An error reported from inside a type manager's operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OpError {
    /// Application-level failure, surfaced as [`Status::AppError`].
    App {
        /// Type-defined code.
        code: i32,
        /// Human-readable detail.
        message: String,
    },
    /// The arguments did not match the operation's signature.
    Type(String),
    /// The operation does not exist (used by `dispatch` fallthrough arms).
    NoSuchOp(String),
    /// A mutation was attempted on a frozen representation.
    Frozen,
    /// A nested kernel primitive failed.
    Kernel(EdenError),
}

impl OpError {
    /// An application error with `code` and `message`.
    pub fn app(code: i32, message: impl Into<String>) -> Self {
        OpError::App {
            code,
            message: message.into(),
        }
    }

    /// A type (argument) error with an expected-signature hint.
    pub fn type_error(expected: impl Into<String>) -> Self {
        OpError::Type(expected.into())
    }

    /// The fallthrough error for unknown operations.
    pub fn no_such_op(op: impl Into<String>) -> Self {
        OpError::NoSuchOp(op.into())
    }

    /// Converts to the invocation status word.
    pub fn into_status(self) -> Status {
        match self {
            OpError::App { code, message } => Status::AppError { code, message },
            OpError::Type(m) => Status::TypeError(m),
            OpError::NoSuchOp(op) => Status::NoSuchOperation(op),
            OpError::Frozen => Status::Frozen,
            OpError::Kernel(EdenError::Invoke(s)) => s,
            OpError::Kernel(e) => Status::AppError {
                code: -1,
                message: format!("kernel error inside operation: {e}"),
            },
        }
    }
}

impl From<EdenError> for OpError {
    fn from(e: EdenError) -> Self {
        OpError::Kernel(e)
    }
}

/// The result of one operation execution.
pub type OpResult = std::result::Result<Vec<Value>, OpError>;

/// A type manager: the shared code maintaining an abstraction.
///
/// Implementations must be stateless with respect to individual objects —
/// all per-object state lives in the representation (long-term) or the
/// short-term facilities reached through [`OpCtx`]. The same manager value
/// serves every instance of the type on its node.
pub trait TypeManager: Send + Sync {
    /// The type's declaration. Called once, at registration.
    fn spec(&self) -> TypeSpec;

    /// Executes one operation against the object bound to `ctx`.
    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult;

    /// Initializes a freshly created object (the creation parameters are
    /// the invocation-style `args` passed to `create_object`).
    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        let _ = (ctx, args);
        Ok(())
    }

    /// The reincarnation condition handler (§4.2): runs after the
    /// representation is reloaded and before queued invocations dispatch.
    /// "The reincarnation condition handler does any work needed to
    /// reinitialize the object, build temporary data structures, and so
    /// on" — including spawning behaviors.
    fn reincarnate(&self, ctx: &OpCtx<'_>) -> Result<(), OpError> {
        let _ = ctx;
        Ok(())
    }
}

/// A resolved operation: the manager whose code runs, and the effective
/// specs after inheritance.
#[derive(Clone)]
pub struct ResolvedOp {
    /// The manager that defined the operation (an ancestor for inherited
    /// operations).
    pub manager: Arc<dyn TypeManager>,
    /// The operation's spec.
    pub op: OpSpec,
    /// The operation's class spec (from the defining type).
    pub limit: usize,
}

struct Registered {
    manager: Arc<dyn TypeManager>,
    spec: TypeSpec,
}

/// The per-node registry of type managers.
///
/// Registration order matters only in that a parent must be registered
/// before its subtypes.
pub struct TypeRegistry {
    types: RwLock<HashMap<String, Registered>>,
}

impl TypeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TypeRegistry {
            types: RwLock::new(HashMap::new()),
        }
    }

    /// Registers a type manager, validating its spec and parent link.
    pub fn register(&self, manager: Arc<dyn TypeManager>) -> Result<(), EdenError> {
        let spec = manager.spec();
        spec.validate()?;
        let mut types = self.types.write();
        if types.contains_key(&spec.name) {
            return Err(EdenError::BadTypeSpec(format!(
                "type '{}' already registered",
                spec.name
            )));
        }
        if let Some(parent) = &spec.parent {
            if !types.contains_key(parent) {
                return Err(EdenError::BadTypeSpec(format!(
                    "supertype '{parent}' of '{}' not registered",
                    spec.name
                )));
            }
        }
        types.insert(spec.name.clone(), Registered { manager, spec });
        Ok(())
    }

    /// Tests whether `type_name` is registered.
    pub fn has(&self, type_name: &str) -> bool {
        self.types.read().contains_key(type_name)
    }

    /// The manager registered for `type_name` (its own code, not an
    /// ancestor's).
    pub fn manager(&self, type_name: &str) -> Option<Arc<dyn TypeManager>> {
        self.types.read().get(type_name).map(|r| r.manager.clone())
    }

    /// The registered names, sorted.
    pub fn type_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.types.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Resolves `op` on `type_name`, walking the inheritance chain.
    ///
    /// Returns the *defining* type's manager and specs: a subtype instance
    /// invoked with an inherited operation executes the supertype's code
    /// (which manipulates the instance's representation through the ctx).
    pub fn resolve_op(&self, type_name: &str, op: &str) -> Option<ResolvedOp> {
        let types = self.types.read();
        let mut current = type_name;
        // Bounded walk to survive accidental parent cycles.
        for _ in 0..32 {
            let reg = types.get(current)?;
            if let Some(op_spec) = reg.spec.ops.iter().find(|o| o.name == op) {
                let limit = reg
                    .spec
                    .classes
                    .iter()
                    .find(|c| c.name == op_spec.class)
                    .map(|c| c.limit)
                    .unwrap_or(1);
                return Some(ResolvedOp {
                    manager: reg.manager.clone(),
                    op: op_spec.clone(),
                    limit,
                });
            }
            match &reg.spec.parent {
                Some(p) => current = p,
                None => return None,
            }
        }
        None
    }

    /// Lists the full effective operation set of `type_name`, own ops
    /// first, then inherited ones not overridden.
    pub fn effective_ops(&self, type_name: &str) -> Vec<OpSpec> {
        let types = self.types.read();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut current = type_name.to_string();
        for _ in 0..32 {
            let Some(reg) = types.get(&current) else {
                break;
            };
            for op in &reg.spec.ops {
                if seen.insert(op.name.clone()) {
                    out.push(op.clone());
                }
            }
            match &reg.spec.parent {
                Some(p) => current = p.clone(),
                None => break,
            }
        }
        out
    }
}

impl Default for TypeRegistry {
    fn default() -> Self {
        TypeRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub(TypeSpec);

    impl TypeManager for Stub {
        fn spec(&self) -> TypeSpec {
            self.0.clone()
        }
        fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, _args: &[Value]) -> OpResult {
            Ok(vec![Value::Str(format!("{}::{}", self.0.name, op))])
        }
    }

    fn base_spec() -> TypeSpec {
        TypeSpec::new("base")
            .class("reads", 4)
            .class("writes", 1)
            .op("get", "reads", Rights::READ)
            .op("set", "writes", Rights::WRITE)
    }

    #[test]
    fn valid_spec_registers() {
        let reg = TypeRegistry::new();
        reg.register(Arc::new(Stub(base_spec()))).unwrap();
        assert!(reg.has("base"));
        assert_eq!(reg.type_names(), vec!["base".to_string()]);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let reg = TypeRegistry::new();
        reg.register(Arc::new(Stub(base_spec()))).unwrap();
        assert!(matches!(
            reg.register(Arc::new(Stub(base_spec()))),
            Err(EdenError::BadTypeSpec(_))
        ));
    }

    #[test]
    fn op_with_undeclared_class_is_rejected() {
        let spec = TypeSpec::new("broken").op("x", "ghost-class", Rights::READ);
        assert!(matches!(spec.validate(), Err(EdenError::BadTypeSpec(_))));
    }

    #[test]
    fn duplicate_ops_and_classes_are_rejected() {
        let spec = TypeSpec::new("dup")
            .class("c", 1)
            .op("x", "c", Rights::READ)
            .op("x", "c", Rights::READ);
        assert!(spec.validate().is_err());
        let spec = TypeSpec::new("dup2").class("c", 1).class("c", 2);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn zero_limit_class_is_rejected() {
        let spec = TypeSpec::new("z").class("c", 0).op("x", "c", Rights::READ);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn missing_parent_is_rejected() {
        let reg = TypeRegistry::new();
        let spec = TypeSpec::new("orphan")
            .with_parent("nonexistent")
            .class("c", 1)
            .op("x", "c", Rights::READ);
        assert!(matches!(
            reg.register(Arc::new(Stub(spec))),
            Err(EdenError::BadTypeSpec(_))
        ));
    }

    #[test]
    fn resolve_finds_own_op_with_class_limit() {
        let reg = TypeRegistry::new();
        reg.register(Arc::new(Stub(base_spec()))).unwrap();
        let r = reg.resolve_op("base", "set").unwrap();
        assert_eq!(r.op.name, "set");
        assert_eq!(r.limit, 1);
        assert_eq!(r.op.required, Rights::WRITE);
        assert!(reg.resolve_op("base", "missing").is_none());
    }

    #[test]
    fn subtype_inherits_and_overrides() {
        let reg = TypeRegistry::new();
        reg.register(Arc::new(Stub(base_spec()))).unwrap();
        let sub = TypeSpec::new("sub")
            .with_parent("base")
            .class("reads", 8)
            .op("get", "reads", Rights::READ) // Override.
            .op("extra", "reads", Rights::READ); // New.
        reg.register(Arc::new(Stub(sub))).unwrap();

        // Overridden: resolved on the subtype with its class limit.
        let get = reg.resolve_op("sub", "get").unwrap();
        assert_eq!(get.limit, 8);
        // Inherited: resolved on the parent, parent's limit.
        let set = reg.resolve_op("sub", "set").unwrap();
        assert_eq!(set.limit, 1);
        assert_eq!(set.op.required, Rights::WRITE);
        // New op exists only on the subtype.
        assert!(reg.resolve_op("base", "extra").is_none());
        assert!(reg.resolve_op("sub", "extra").is_some());
    }

    #[test]
    fn effective_ops_lists_inherited_without_duplicates() {
        let reg = TypeRegistry::new();
        reg.register(Arc::new(Stub(base_spec()))).unwrap();
        let sub = TypeSpec::new("sub")
            .with_parent("base")
            .class("reads", 2)
            .op("get", "reads", Rights::READ);
        reg.register(Arc::new(Stub(sub))).unwrap();
        let ops: Vec<String> = reg
            .effective_ops("sub")
            .into_iter()
            .map(|o| o.name)
            .collect();
        assert_eq!(ops, vec!["get".to_string(), "set".to_string()]);
    }

    #[test]
    fn grandparent_chain_resolves() {
        let reg = TypeRegistry::new();
        reg.register(Arc::new(Stub(base_spec()))).unwrap();
        reg.register(Arc::new(Stub(TypeSpec::new("mid").with_parent("base"))))
            .unwrap();
        reg.register(Arc::new(Stub(TypeSpec::new("leaf").with_parent("mid"))))
            .unwrap();
        assert!(reg.resolve_op("leaf", "get").is_some());
        assert!(reg.resolve_op("leaf", "set").is_some());
    }

    #[test]
    fn op_error_maps_to_status() {
        assert_eq!(
            OpError::app(4, "boom").into_status(),
            Status::AppError {
                code: 4,
                message: "boom".into()
            }
        );
        assert_eq!(
            OpError::no_such_op("zap").into_status(),
            Status::NoSuchOperation("zap".into())
        );
        assert_eq!(OpError::Frozen.into_status(), Status::Frozen);
        assert_eq!(
            OpError::Kernel(EdenError::Invoke(Status::Timeout)).into_status(),
            Status::Timeout
        );
    }
}
