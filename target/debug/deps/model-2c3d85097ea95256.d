/root/repo/target/debug/deps/model-2c3d85097ea95256.d: crates/core/tests/model.rs

/root/repo/target/debug/deps/model-2c3d85097ea95256: crates/core/tests/model.rs

crates/core/tests/model.rs:
