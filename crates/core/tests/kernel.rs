//! End-to-end kernel tests: every §4 mechanism exercised through the
//! public API on in-process clusters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use eden_capability::{Capability, NodeId, Rights};
use eden_kernel::{
    Cluster, EdenError, NodeConfig, OpCtx, OpError, OpResult, ReliabilityLevel, TypeManager,
    TypeSpec,
};
use eden_wire::{Status, Value};

/// A counter: `add` is serialized (class limit 1), `get` is concurrent.
struct Counter;

impl TypeManager for Counter {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("counter")
            .class("writes", 1)
            .class("reads", 4)
            .op("add", "writes", Rights::WRITE)
            .op("get", "reads", Rights::READ)
            .op("add_and_checkpoint", "writes", Rights::WRITE)
            .op("crash", "writes", Rights::OWNER)
            .op("set_checksite", "writes", Rights::OWNER)
            .op("destroy", "writes", Rights::DESTROY)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, args: &[Value]) -> Result<(), OpError> {
        let start = args.first().and_then(Value::as_i64).unwrap_or(0);
        ctx.mutate_repr(|r| r.put_i64("count", start))?;
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "add" => {
                let delta = OpCtx::i64_arg(args, 0)?;
                let new = ctx.mutate_repr(|r| {
                    let v = r.get_i64("count").unwrap_or(0) + delta;
                    r.put_i64("count", v);
                    v
                })?;
                Ok(vec![Value::I64(new)])
            }
            "get" => Ok(vec![Value::I64(
                ctx.read_repr(|r| r.get_i64("count").unwrap_or(0)),
            )]),
            "add_and_checkpoint" => {
                let delta = OpCtx::i64_arg(args, 0)?;
                let new = ctx.mutate_repr(|r| {
                    let v = r.get_i64("count").unwrap_or(0) + delta;
                    r.put_i64("count", v);
                    v
                })?;
                let version = ctx.checkpoint()?;
                Ok(vec![Value::I64(new), Value::U64(version)])
            }
            "crash" => {
                ctx.crash();
                Ok(vec![])
            }
            "set_checksite" => {
                let node = OpCtx::u64_arg(args, 0)? as u16;
                let replicas = OpCtx::u64_arg(args, 1).unwrap_or(0) as usize;
                let level = if replicas == 0 {
                    ReliabilityLevel::Local
                } else {
                    ReliabilityLevel::Replicated(replicas)
                };
                ctx.set_checksite(NodeId(node), level)?;
                Ok(vec![])
            }
            "destroy" => {
                ctx.destroy();
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Tracks concurrency inside operations via shared atomics.
struct Gauged {
    current: Arc<AtomicU64>,
    peak: Arc<AtomicU64>,
    limit: usize,
}

impl TypeManager for Gauged {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("gauged")
            .class("work", self.limit)
            .op("work", "work", Rights::EXECUTE)
    }

    fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, _args: &[Value]) -> OpResult {
        match op {
            "work" => {
                let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
                self.peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                self.current.fetch_sub(1, Ordering::SeqCst);
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Calls through to another object (nested invocation).
struct Proxy;

impl TypeManager for Proxy {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("proxy")
            .class("all", 4)
            .op("relay_add", "all", Rights::EXECUTE)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "relay_add" => {
                let target = OpCtx::cap_arg(args, 0)?;
                let delta = OpCtx::i64_arg(args, 1)?;
                let out = ctx.invoke(target, "add", &[Value::I64(delta)])?;
                Ok(out)
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Misbehaving operations: sleeping and panicking.
struct Rogue;

impl TypeManager for Rogue {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("rogue")
            .class("all", 8)
            .op("sleep_ms", "all", Rights::EXECUTE)
            .op("panic", "all", Rights::EXECUTE)
    }

    fn dispatch(&self, _ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "sleep_ms" => {
                let ms = args.first().and_then(Value::as_u64).unwrap_or(0);
                std::thread::sleep(Duration::from_millis(ms));
                Ok(vec![Value::Str("done".into())])
            }
            "panic" => panic!("deliberate test panic"),
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// A dictionary that can freeze itself.
struct Dict;

impl TypeManager for Dict {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("dict")
            .class("writes", 1)
            .class("reads", 8)
            .op("put", "writes", Rights::WRITE)
            .op("get", "reads", Rights::READ)
            .op("freeze", "writes", Rights::FREEZE)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "put" => {
                let key = OpCtx::str_arg(args, 0)?.to_string();
                let value = OpCtx::str_arg(args, 1)?.to_string();
                ctx.mutate_repr(|r| r.put_str(format!("kv:{key}"), &value))?;
                Ok(vec![])
            }
            "get" => {
                let key = OpCtx::str_arg(args, 0)?;
                let v = ctx.read_repr(|r| r.get_str(&format!("kv:{key}")));
                Ok(vec![v.map(Value::Str).unwrap_or(Value::Unit)])
            }
            "freeze" => {
                let version = ctx.freeze()?;
                Ok(vec![Value::U64(version)])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Migrates itself on request.
struct Nomad;

impl TypeManager for Nomad {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("nomad")
            .class("all", 2)
            .op("where_am_i", "all", Rights::READ)
            .op("migrate", "all", Rights::MOVE)
            .op("set_note", "all", Rights::WRITE)
            .op("get_note", "all", Rights::READ)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "where_am_i" => Ok(vec![Value::U64(ctx.node_id().0 as u64)]),
            "migrate" => {
                let dst = OpCtx::u64_arg(args, 0)? as u16;
                ctx.move_to(NodeId(dst))?;
                Ok(vec![])
            }
            "set_note" => {
                let note = OpCtx::str_arg(args, 0)?.to_string();
                ctx.mutate_repr(|r| r.put_str("note", &note))?;
                Ok(vec![])
            }
            "get_note" => Ok(vec![ctx
                .read_repr(|r| r.get_str("note"))
                .map(Value::Str)
                .unwrap_or(Value::Unit)]),
            other => Err(OpError::no_such_op(other)),
        }
    }
}

/// Uses a behavior + port: `feed` sends values to a caretaker behavior
/// that accumulates them into the representation.
struct Caretaker;

impl TypeManager for Caretaker {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("caretaker")
            .class("all", 4)
            .op("feed", "all", Rights::WRITE)
            .op("total", "all", Rights::READ)
    }

    fn initialize(&self, ctx: &OpCtx<'_>, _args: &[Value]) -> Result<(), OpError> {
        self.reincarnate(ctx)
    }

    fn reincarnate(&self, ctx: &OpCtx<'_>) -> Result<(), OpError> {
        ctx.spawn_behavior("accumulator", |bctx| {
            let port = bctx.port("in");
            while let Some(v) = port.recv() {
                if let Some(n) = v.as_i64() {
                    let _ = bctx.mutate_repr(|r| {
                        let t = r.get_i64("total").unwrap_or(0) + n;
                        r.put_i64("total", t);
                    });
                }
                if bctx.should_stop() {
                    break;
                }
            }
        });
        Ok(())
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "feed" => {
                let n = OpCtx::i64_arg(args, 0)?;
                ctx.port("in").send(Value::I64(n));
                Ok(vec![])
            }
            "total" => Ok(vec![Value::I64(
                ctx.read_repr(|r| r.get_i64("total").unwrap_or(0)),
            )]),
            other => Err(OpError::no_such_op(other)),
        }
    }
}

fn standard_cluster(n: usize) -> Cluster {
    Cluster::builder()
        .nodes(n)
        .register(|| Box::new(Counter))
        .register(|| Box::new(Proxy))
        .register(|| Box::new(Rogue))
        .register(|| Box::new(Dict))
        .register(|| Box::new(Nomad))
        .register(|| Box::new(Caretaker))
        .build()
}

#[test]
fn create_and_invoke_locally() {
    let cluster = standard_cluster(1);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    let out = cluster
        .node(0)
        .invoke(cap, "add", &[Value::I64(5)])
        .unwrap();
    assert_eq!(out, vec![Value::I64(5)]);
    let out = cluster.node(0).invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(5)]);
}

#[test]
fn initialize_arguments_reach_the_type_manager() {
    let cluster = standard_cluster(1);
    let cap = cluster
        .node(0)
        .create_object("counter", &[Value::I64(100)])
        .unwrap();
    let out = cluster.node(0).invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(100)]);
}

#[test]
fn invocation_is_location_independent() {
    let cluster = standard_cluster(3);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    // Invoke from a node that is neither the birth node nor the creator.
    let out = cluster
        .node(2)
        .invoke(cap, "add", &[Value::I64(7)])
        .unwrap();
    assert_eq!(out, vec![Value::I64(7)]);
    // And from another.
    let out = cluster.node(1).invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(7)]);
    // The executing node was node 0 throughout.
    assert_eq!(cluster.node(0).metrics().remote_invocations_served, 2);
}

#[test]
fn unknown_object_reports_no_such_object() {
    let cluster = standard_cluster(2);
    let bogus =
        Capability::mint(eden_capability::NameGenerator::with_epoch(NodeId(0), 0xdead).next_name());
    let err = cluster.node(1).invoke(bogus, "get", &[]).unwrap_err();
    assert_eq!(err, EdenError::Invoke(Status::NoSuchObject));
}

#[test]
fn unknown_operation_reports_no_such_operation() {
    let cluster = standard_cluster(1);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    let err = cluster.node(0).invoke(cap, "frobnicate", &[]).unwrap_err();
    assert_eq!(
        err,
        EdenError::Invoke(Status::NoSuchOperation("frobnicate".into()))
    );
}

#[test]
fn rights_are_verified_before_dispatch() {
    let cluster = standard_cluster(2);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    let read_only = cap.restrict(Rights::READ);
    // Reads pass.
    cluster.node(1).invoke(read_only, "get", &[]).unwrap();
    // Writes fail with the precise gap, locally and remotely.
    for node in [0, 1] {
        let err = cluster
            .node(node)
            .invoke(read_only, "add", &[Value::I64(1)])
            .unwrap_err();
        match err {
            EdenError::Invoke(Status::RightsViolation { required, held }) => {
                assert_eq!(required, Rights::WRITE);
                assert_eq!(held, Rights::READ);
            }
            other => panic!("expected rights violation, got {other:?}"),
        }
    }
}

#[test]
fn wrong_argument_types_report_type_error() {
    let cluster = standard_cluster(1);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    let err = cluster
        .node(0)
        .invoke(cap, "add", &[Value::Str("three".into())])
        .unwrap_err();
    assert!(matches!(err, EdenError::Invoke(Status::TypeError(_))));
}

#[test]
fn user_supplied_timeout_is_honored() {
    let cluster = standard_cluster(1);
    let cap = cluster.node(0).create_object("rogue", &[]).unwrap();
    let err = cluster
        .node(0)
        .invoke_with_timeout(
            cap,
            "sleep_ms",
            &[Value::U64(500)],
            Duration::from_millis(50),
        )
        .unwrap_err();
    assert!(err.is_timeout());
    assert_eq!(cluster.node(0).metrics().timeouts, 1);
}

#[test]
fn panicking_operation_becomes_app_error_and_node_survives() {
    let cluster = standard_cluster(1);
    let cap = cluster.node(0).create_object("rogue", &[]).unwrap();
    let err = cluster.node(0).invoke(cap, "panic", &[]).unwrap_err();
    assert!(matches!(
        err,
        EdenError::Invoke(Status::AppError { code: -3, .. })
    ));
    // The object and node still work.
    let out = cluster
        .node(0)
        .invoke(cap, "sleep_ms", &[Value::U64(0)])
        .unwrap();
    assert_eq!(out, vec![Value::Str("done".into())]);
}

#[test]
fn class_limit_one_gives_mutual_exclusion() {
    let current = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));
    let (c2, p2) = (current.clone(), peak.clone());
    let cluster = Cluster::builder()
        .nodes(1)
        .node_config(NodeConfig {
            virtual_processors: 8,
            ..Default::default()
        })
        .register(move || {
            Box::new(Gauged {
                current: c2.clone(),
                peak: p2.clone(),
                limit: 1,
            })
        })
        .build();
    let cap = cluster.node(0).create_object("gauged", &[]).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|_| cluster.node(0).invoke_async(cap, "work", &[]))
        .collect();
    for h in handles {
        h.wait(Duration::from_secs(10)).unwrap();
    }
    assert_eq!(
        peak.load(Ordering::SeqCst),
        1,
        "limit-1 class must serialize its operations"
    );
}

#[test]
fn class_limit_k_allows_exactly_k_concurrent_processes() {
    let current = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));
    let (c2, p2) = (current.clone(), peak.clone());
    let cluster = Cluster::builder()
        .nodes(1)
        .node_config(NodeConfig {
            virtual_processors: 16,
            ..Default::default()
        })
        .register(move || {
            Box::new(Gauged {
                current: c2.clone(),
                peak: p2.clone(),
                limit: 3,
            })
        })
        .build();
    let cap = cluster.node(0).create_object("gauged", &[]).unwrap();
    let handles: Vec<_> = (0..12)
        .map(|_| cluster.node(0).invoke_async(cap, "work", &[]))
        .collect();
    for h in handles {
        h.wait(Duration::from_secs(10)).unwrap();
    }
    let observed = peak.load(Ordering::SeqCst);
    assert!(observed <= 3, "class limit exceeded: {observed}");
    assert!(observed >= 2, "concurrency never materialized: {observed}");
}

#[test]
fn nested_invocation_does_not_deadlock_a_single_vproc_node() {
    let cluster = Cluster::builder()
        .nodes(1)
        .node_config(NodeConfig {
            virtual_processors: 1,
            ..Default::default()
        })
        .register(|| Box::new(Counter))
        .register(|| Box::new(Proxy))
        .build();
    let counter = cluster.node(0).create_object("counter", &[]).unwrap();
    let proxy = cluster.node(0).create_object("proxy", &[]).unwrap();
    let out = cluster
        .node(0)
        .invoke(proxy, "relay_add", &[Value::Cap(counter), Value::I64(3)])
        .unwrap();
    assert_eq!(out, vec![Value::I64(3)]);
}

#[test]
fn nested_invocation_crosses_nodes() {
    let cluster = standard_cluster(2);
    let counter = cluster.node(0).create_object("counter", &[]).unwrap();
    let proxy = cluster.node(1).create_object("proxy", &[]).unwrap();
    let out = cluster
        .node(0)
        .invoke(proxy, "relay_add", &[Value::Cap(counter), Value::I64(9)])
        .unwrap();
    assert_eq!(out, vec![Value::I64(9)]);
}

#[test]
fn async_invocation_yields_a_usable_handle() {
    let cluster = standard_cluster(1);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    let h1 = cluster.node(0).invoke_async(cap, "add", &[Value::I64(1)]);
    let h2 = cluster.node(0).invoke_async(cap, "add", &[Value::I64(2)]);
    h1.wait(Duration::from_secs(5)).unwrap();
    h2.wait(Duration::from_secs(5)).unwrap();
    let out = cluster.node(0).invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(3)]);
}

#[test]
fn checkpoint_crash_reincarnate_preserves_long_term_state() {
    let cluster = standard_cluster(1);
    let node = cluster.node(0);
    let cap = node.create_object("counter", &[]).unwrap();
    node.invoke(cap, "add_and_checkpoint", &[Value::I64(10)])
        .unwrap();
    // Mutate past the checkpoint, then crash: the un-checkpointed add is
    // lost, exactly per §4.4.
    node.invoke(cap, "add", &[Value::I64(5)]).unwrap();
    node.invoke(cap, "crash", &[]).unwrap();

    // The next invocation reincarnates from the checkpoint.
    let out = node.invoke(cap, "get", &[]).unwrap();
    assert_eq!(
        out,
        vec![Value::I64(10)],
        "state rolls back to the checkpoint"
    );
    assert_eq!(node.metrics().crashes, 1);
    assert_eq!(node.metrics().reincarnations, 1);
}

#[test]
fn crash_without_checkpoint_loses_the_object() {
    let cluster = standard_cluster(1);
    let node = cluster.node(0);
    let cap = node.create_object("counter", &[]).unwrap();
    node.invoke(cap, "add", &[Value::I64(1)]).unwrap();
    node.invoke(cap, "crash", &[]).unwrap();
    // An invocation racing the teardown may see ObjectCrashed; once the
    // teardown completes the name is simply gone.
    let err = node.invoke(cap, "get", &[]).unwrap_err();
    assert!(
        matches!(
            err,
            EdenError::Invoke(Status::NoSuchObject) | EdenError::Invoke(Status::ObjectCrashed)
        ),
        "unexpected: {err:?}"
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    loop {
        match node.invoke(cap, "get", &[]) {
            Err(EdenError::Invoke(Status::NoSuchObject)) => break,
            Err(EdenError::Invoke(Status::ObjectCrashed)) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "teardown never settled"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}

#[test]
fn destroyed_objects_stay_destroyed() {
    let cluster = standard_cluster(1);
    let node = cluster.node(0);
    let cap = node.create_object("counter", &[]).unwrap();
    node.invoke(cap, "add_and_checkpoint", &[Value::I64(1)])
        .unwrap();
    node.invoke(cap, "destroy", &[]).unwrap();
    let err = node.invoke(cap, "get", &[]).unwrap_err();
    assert_eq!(err, EdenError::Invoke(Status::Destroyed));
}

#[test]
fn reincarnation_happens_transparently_for_remote_invokers() {
    let cluster = standard_cluster(2);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    cluster
        .node(0)
        .invoke(cap, "add_and_checkpoint", &[Value::I64(42)])
        .unwrap();
    cluster.node(0).invoke(cap, "crash", &[]).unwrap();
    // Node 1 invokes; node 0 reincarnates transparently.
    let out = cluster.node(1).invoke(cap, "get", &[]).unwrap();
    assert_eq!(out, vec![Value::I64(42)]);
}

#[test]
fn failover_to_checksite_after_node_death() {
    let cluster = standard_cluster(3);
    // Create on node 0 but keep long-term state on node 1.
    let cap = cluster.node(0).create_object("nomad", &[]).unwrap();
    cluster
        .node(0)
        .invoke(cap, "set_note", &[Value::Str("precious".into())])
        .unwrap();
    // Move long-term state to node 1 via a chained type op? The nomad
    // does not expose checksite; drive checkpoint through the kernel on
    // the dict instead.
    let dict = cluster.node(0).create_object("dict", &[]).unwrap();
    cluster
        .node(0)
        .invoke(
            dict,
            "put",
            &[Value::Str("k".into()), Value::Str("v".into())],
        )
        .unwrap();
    // Manually checkpoint at a remote checksite using a counter's
    // add_and_checkpoint is local-site; instead exercise via kill.
    // -- Simplest end-to-end: checkpoint locally, replicate by killing
    //    only after the checkpoint reached another node is covered in
    //    cluster tests with checksite-capable types; here we verify the
    //    local-store path: kill node 0 without checkpoint → object gone.
    cluster.kill(0);
    let err = cluster
        .node(2)
        .invoke_with_timeout(
            dict,
            "get",
            &[Value::Str("k".into())],
            Duration::from_secs(2),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            EdenError::Invoke(Status::NoSuchObject) | EdenError::Invoke(Status::Timeout)
        ),
        "uncheckpointed object must be lost with its node: {err:?}"
    );
}

#[test]
fn move_relocates_execution_and_leaves_forwarding() {
    let cluster = standard_cluster(3);
    let cap = cluster.node(0).create_object("nomad", &[]).unwrap();
    cluster
        .node(0)
        .invoke(cap, "set_note", &[Value::Str("carried".into())])
        .unwrap();
    let here = cluster.node(0).invoke(cap, "where_am_i", &[]).unwrap();
    assert_eq!(here, vec![Value::U64(0)]);

    cluster
        .node(0)
        .invoke(cap, "migrate", &[Value::U64(1)])
        .unwrap();
    // The move is deferred until the migrate invocation completes; poll
    // until the object answers from its new home.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let here = cluster.node(2).invoke(cap, "where_am_i", &[]).unwrap();
        if here == vec![Value::U64(1)] {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "move never completed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Representation travelled with the object.
    let note = cluster.node(2).invoke(cap, "get_note", &[]).unwrap();
    assert_eq!(note, vec![Value::Str("carried".into())]);
    assert_eq!(cluster.node(0).metrics().moves_out, 1);
    assert_eq!(cluster.node(1).metrics().moves_in, 1);
    assert!(!cluster.node(0).is_local(cap.name()));
    assert!(cluster.node(1).is_local(cap.name()));
}

#[test]
fn kernel_move_object_requires_the_move_right() {
    let cluster = standard_cluster(2);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    let no_move = cap.restrict(Rights::READ | Rights::WRITE);
    let err = cluster.node(0).move_object(no_move, NodeId(1)).unwrap_err();
    assert!(matches!(
        err,
        EdenError::Invoke(Status::RightsViolation { .. })
    ));
    // With the right, the move succeeds.
    cluster.node(0).move_object(cap, NodeId(1)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !cluster.node(1).is_local(cap.name()) {
        assert!(std::time::Instant::now() < deadline, "move never completed");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn frozen_objects_reject_mutation_but_serve_reads() {
    let cluster = standard_cluster(1);
    let node = cluster.node(0);
    let cap = node.create_object("dict", &[]).unwrap();
    node.invoke(
        cap,
        "put",
        &[Value::Str("a".into()), Value::Str("1".into())],
    )
    .unwrap();
    node.invoke(cap, "freeze", &[]).unwrap();
    let err = node
        .invoke(
            cap,
            "put",
            &[Value::Str("b".into()), Value::Str("2".into())],
        )
        .unwrap_err();
    assert_eq!(err, EdenError::Invoke(Status::Frozen));
    let out = node.invoke(cap, "get", &[Value::Str("a".into())]).unwrap();
    assert_eq!(out, vec![Value::Str("1".into())]);
}

#[test]
fn frozen_replicas_serve_invocations_locally() {
    let cluster = standard_cluster(3);
    let cap = cluster.node(0).create_object("dict", &[]).unwrap();
    cluster
        .node(0)
        .invoke(
            cap,
            "put",
            &[Value::Str("k".into()), Value::Str("v".into())],
        )
        .unwrap();
    cluster.node(0).invoke(cap, "freeze", &[]).unwrap();

    // Before caching: node 2's reads are remote.
    cluster
        .node(2)
        .invoke(cap, "get", &[Value::Str("k".into())])
        .unwrap();
    let before = cluster.node(2).metrics();
    assert!(before.remote_invocations_sent >= 1);

    // Cache the replica, then read again: served locally.
    cluster.node(2).cache_replica(cap).unwrap();
    assert_eq!(cluster.node(2).metrics().replicas_cached, 1);
    let sent_before = cluster.node(2).metrics().remote_invocations_sent;
    let out = cluster
        .node(2)
        .invoke(cap, "get", &[Value::Str("k".into())])
        .unwrap();
    assert_eq!(out, vec![Value::Str("v".into())]);
    assert_eq!(
        cluster.node(2).metrics().remote_invocations_sent,
        sent_before,
        "replica reads must not touch the network"
    );
    // Mutations against the replica are refused.
    let err = cluster
        .node(2)
        .invoke(
            cap,
            "put",
            &[Value::Str("x".into()), Value::Str("y".into())],
        )
        .unwrap_err();
    assert_eq!(err, EdenError::Invoke(Status::Frozen));
}

#[test]
fn caching_an_unfrozen_object_is_refused() {
    let cluster = standard_cluster(2);
    let cap = cluster.node(0).create_object("dict", &[]).unwrap();
    let err = cluster.node(1).cache_replica(cap).unwrap_err();
    assert!(matches!(
        err,
        EdenError::BadRequest(_) | EdenError::Invoke(_)
    ));
}

#[test]
fn cache_replica_requires_the_read_right() {
    let cluster = standard_cluster(2);
    let cap = cluster.node(0).create_object("dict", &[]).unwrap();
    cluster
        .node(0)
        .invoke(
            cap,
            "put",
            &[Value::Str("k".into()), Value::Str("v".into())],
        )
        .unwrap();
    cluster.node(0).invoke(cap, "freeze", &[]).unwrap();
    // A write-only capability must not be able to pull the frozen
    // representation across the network.
    let no_read = cap.restrict(Rights::WRITE);
    let err = cluster.node(1).cache_replica(no_read).unwrap_err();
    assert!(matches!(
        err,
        EdenError::Invoke(Status::RightsViolation { .. })
    ));
    assert_eq!(cluster.node(1).metrics().replicas_cached, 0);
    // With READ, the replica installs.
    cluster.node(1).cache_replica(cap).unwrap();
    assert_eq!(cluster.node(1).metrics().replicas_cached, 1);
}

#[test]
fn activate_here_requires_the_move_right() {
    let cluster = standard_cluster(2);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    let no_move = cap.restrict(Rights::READ | Rights::WRITE);
    let err = cluster.node(1).activate_here(no_move).unwrap_err();
    assert!(matches!(
        err,
        EdenError::Invoke(Status::RightsViolation { .. })
    ));
}

#[test]
fn behaviors_process_port_traffic() {
    let cluster = standard_cluster(1);
    let node = cluster.node(0);
    let cap = node.create_object("caretaker", &[]).unwrap();
    for i in 1..=10 {
        node.invoke(cap, "feed", &[Value::I64(i)]).unwrap();
    }
    // The behavior drains the port asynchronously; poll for the total.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let out = node.invoke(cap, "total", &[]).unwrap();
        if out == vec![Value::I64(55)] {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "behavior never accumulated the feed: {out:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn ping_reaches_live_nodes_and_not_dead_ones() {
    let cluster = standard_cluster(2);
    assert!(cluster.node(0).ping(NodeId(1), Duration::from_secs(1)));
    cluster.kill(1);
    assert!(!cluster.node(0).ping(NodeId(1), Duration::from_millis(200)));
}

#[test]
fn location_cache_warms_after_first_search() {
    let cluster = standard_cluster(3);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    // First remote invoke from node 2 uses the birth-node hint directly
    // (birth node 0 holds it), so no broadcast is needed.
    cluster.node(2).invoke(cap, "get", &[]).unwrap();
    let m = cluster.node(2).metrics();
    assert_eq!(m.location_broadcasts, 0, "birth hint should suffice");
    // Subsequent invokes use the cache.
    cluster.node(2).invoke(cap, "get", &[]).unwrap();
    assert!(cluster.node(2).metrics().location_cache_hits >= 1);
}

#[test]
fn broadcast_finds_objects_that_moved_when_hints_fail() {
    let cluster = standard_cluster(3);
    let cap = cluster.node(0).create_object("nomad", &[]).unwrap();
    cluster
        .node(0)
        .invoke(cap, "migrate", &[Value::U64(1)])
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !cluster.node(1).is_local(cap.name()) {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    // Node 2 has no hints; its invoke must still find the object —
    // either via the birth node's forwarding address or broadcast.
    let out = cluster.node(2).invoke(cap, "where_am_i", &[]).unwrap();
    assert_eq!(out, vec![Value::U64(1)]);
}

#[test]
fn many_objects_coexist_on_one_node() {
    let cluster = standard_cluster(1);
    let node = cluster.node(0);
    let caps: Vec<_> = (0..100)
        .map(|i| node.create_object("counter", &[Value::I64(i)]).unwrap())
        .collect();
    for (i, cap) in caps.iter().enumerate() {
        let out = node.invoke(*cap, "get", &[]).unwrap();
        assert_eq!(out, vec![Value::I64(i as i64)]);
    }
    assert_eq!(node.active_objects().len(), 100);
}

#[test]
fn remote_checksite_survives_node_death() {
    // The §4.4 contract end-to-end: the checksite node, not the
    // executing node, owns durability. Kill the executing node and the
    // object reincarnates at the checksite on the next invocation.
    let cluster = standard_cluster(3);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    cluster
        .node(0)
        .invoke(cap, "set_checksite", &[Value::U64(1), Value::U64(0)])
        .unwrap();
    cluster
        .node(0)
        .invoke(cap, "add_and_checkpoint", &[Value::I64(33)])
        .unwrap();
    // The checkpoint lives on node 1, not node 0.
    assert!(matches!(
        cluster.node(1).store().latest(cap.name()),
        Ok(Some(_))
    ));
    assert!(matches!(
        cluster.node(0).store().latest(cap.name()),
        Ok(None)
    ));

    cluster.kill(0);
    let out = cluster
        .node(2)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(5))
        .unwrap();
    assert_eq!(
        out,
        vec![Value::I64(33)],
        "state must survive at the checksite"
    );
    assert_eq!(cluster.node(1).metrics().reincarnations, 1);
    assert!(
        cluster.node(1).is_local(cap.name()),
        "object now lives at the checksite"
    );
}

#[test]
fn replicated_checkpoints_survive_checksite_death_too() {
    let cluster = standard_cluster(4);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    // Checksite node 1, plus 2 replicas.
    cluster
        .node(0)
        .invoke(cap, "set_checksite", &[Value::U64(1), Value::U64(2)])
        .unwrap();
    cluster
        .node(0)
        .invoke(cap, "add_and_checkpoint", &[Value::I64(77)])
        .unwrap();
    // Kill both the executing node and the checksite.
    cluster.kill(0);
    cluster.kill(1);
    let out = cluster
        .node(3)
        .invoke_with_timeout(cap, "get", &[], Duration::from_secs(8))
        .unwrap();
    assert_eq!(out, vec![Value::I64(77)], "a replica must take over");
}

#[test]
fn moved_object_is_not_resurrected_from_its_old_checkpoint() {
    // Regression: an object that checkpointed on node 0 and then moved
    // to node 1 leaves its checkpoint at the checksite (node 0). A
    // request arriving at node 0 must follow the forwarding address,
    // not reincarnate a stale twin.
    let cluster = standard_cluster(3);
    let cap = cluster.node(0).create_object("counter", &[]).unwrap();
    cluster
        .node(0)
        .invoke(cap, "add_and_checkpoint", &[Value::I64(1)])
        .unwrap();
    cluster.node(0).move_object(cap, NodeId(1)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !cluster.node(1).is_local(cap.name()) {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(10));
    }
    // Mutate on the new home, then invoke *via the old home's hint*
    // (node 2 has no cache, so it tries the birth node first).
    cluster
        .node(1)
        .invoke(cap, "add", &[Value::I64(1)])
        .unwrap();
    let out = cluster.node(2).invoke(cap, "get", &[]).unwrap();
    assert_eq!(
        out,
        vec![Value::I64(2)],
        "must see the moved object's state"
    );
    assert!(
        !cluster.node(0).is_local(cap.name()),
        "the old home must not resurrect the object"
    );
    assert_eq!(cluster.node(0).metrics().reincarnations, 0);
}

#[test]
fn shutdown_refuses_further_work() {
    let cluster = standard_cluster(1);
    let node = cluster.node(0).clone();
    let cap = node.create_object("counter", &[]).unwrap();
    node.shutdown();
    assert_eq!(
        node.create_object("counter", &[]),
        Err(EdenError::ShuttingDown)
    );
    assert_eq!(node.invoke(cap, "get", &[]), Err(EdenError::ShuttingDown));
}
