//! Telemetry serializers: Prometheus text exposition, Chrome-trace
//! (Perfetto-loadable) JSON, and a JSONL structured-event stream.
//!
//! The registries keep telemetry in process memory; this module is the
//! boundary where it leaves the process in formats external tools read:
//!
//! * [`prometheus_text`] — counters, gauges and histograms for all
//!   scraped nodes (plus a cluster-merged series) in the Prometheus text
//!   exposition format.
//! * [`chrome_trace_json`] — a span set as Chrome trace-event JSON
//!   (`ph: "X"` complete events), loadable in Perfetto / `chrome://tracing`.
//! * [`events_jsonl`] — flight-recorder events as one JSON object per
//!   line, totally ordered by the process-global sequence number.
//!
//! All three are hand-rolled (the repo carries no serde); the JSONL
//! parser and [`validate_json`] exist so round-trips are testable without
//! external tooling.

use std::collections::{BTreeMap, BTreeSet};

use crate::hist::{merge_snapshot_maps, HistogramSnapshot};
use crate::recorder::{FlightEvent, KernelEvent};
use crate::registry::ObsRegistry;
use crate::trace::SpanRecord;

/// One node's scraped metrics, ready for serialization or merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    /// The `node` label value: a node id (`"0"`, `"1"`, …) or
    /// `"cluster"` for a merged view.
    pub node: String,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → level.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl NodeMetrics {
    /// Snapshots one registry into an exportable form.
    pub fn from_registry(reg: &ObsRegistry) -> NodeMetrics {
        NodeMetrics {
            node: reg.node().to_string(),
            counters: reg.counters_snapshot(),
            gauges: reg.gauges_snapshot(),
            histograms: reg.histograms_snapshot(),
        }
    }
}

/// Merges per-node metrics into one cluster-wide view (label
/// `"cluster"`). Counters and gauges sum; histograms fold with
/// [`HistogramSnapshot::merge`]. Every merge is commutative, so the
/// result is independent of the order of `parts`.
pub fn merge_metrics(parts: &[NodeMetrics]) -> NodeMetrics {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
    for p in parts {
        for (name, v) in &p.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &p.gauges {
            *gauges.entry(name.clone()).or_insert(0) += v;
        }
    }
    NodeMetrics {
        node: "cluster".to_string(),
        counters,
        gauges,
        histograms: merge_snapshot_maps(parts.iter().map(|p| &p.histograms)),
    }
}

/// Rewrites a metric name into the Prometheus name charset
/// (`[a-zA-Z0-9_:]`), prefixed `eden_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("eden_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Serializes metric sets in the Prometheus text exposition format, one
/// time series per `(metric, node)` pair. Histograms emit cumulative
/// `_bucket{le=…}` series plus `_sum` and `_count`, so a scrape of a
/// multi-node cluster carries both per-node and (when a merged
/// [`NodeMetrics`] is included in `parts`) cluster-wide distributions.
pub fn prometheus_text(parts: &[NodeMetrics]) -> String {
    let mut out = String::new();
    let counter_names: BTreeSet<&str> = parts
        .iter()
        .flat_map(|p| p.counters.keys().map(String::as_str))
        .collect();
    for name in counter_names {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n"));
        for p in parts {
            if let Some(v) = p.counters.get(name) {
                out.push_str(&format!("{n}{{node=\"{}\"}} {v}\n", p.node));
            }
        }
    }
    let gauge_names: BTreeSet<&str> = parts
        .iter()
        .flat_map(|p| p.gauges.keys().map(String::as_str))
        .collect();
    for name in gauge_names {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        for p in parts {
            if let Some(v) = p.gauges.get(name) {
                out.push_str(&format!("{n}{{node=\"{}\"}} {v}\n", p.node));
            }
        }
    }
    let hist_names: BTreeSet<&str> = parts
        .iter()
        .flat_map(|p| p.histograms.keys().map(String::as_str))
        .collect();
    for name in hist_names {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        for p in parts {
            let Some(h) = p.histograms.get(name) else {
                continue;
            };
            for (le, cum) in h.cumulative_buckets() {
                out.push_str(&format!(
                    "{n}_bucket{{node=\"{}\",le=\"{le}\"}} {cum}\n",
                    p.node
                ));
            }
            out.push_str(&format!(
                "{n}_bucket{{node=\"{}\",le=\"+Inf\"}} {}\n",
                p.node, h.count
            ));
            out.push_str(&format!("{n}_sum{{node=\"{}\"}} {}\n", p.node, h.sum));
            out.push_str(&format!("{n}_count{{node=\"{}\"}} {}\n", p.node, h.count));
        }
    }
    out
}

/// One sample line parsed back out of [`prometheus_text`] output.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses one exposition line. Comment (`#`) and blank lines return
/// `None`; malformed sample lines also return `None`, so a round-trip
/// test distinguishes them by checking comment lines explicitly. Handles
/// the subset of the format [`prometheus_text`] emits (no escaping
/// inside label values, no timestamps).
pub fn parse_prometheus_line(line: &str) -> Option<PromSample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (head, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=')?;
                let v = v.strip_prefix('"')?.strip_suffix('"')?;
                labels.push((k.to_string(), v.to_string()));
            }
            (name.to_string(), labels)
        }
    };
    Some(PromSample {
        name,
        labels,
        value,
    })
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes spans as Chrome trace-event JSON, loadable in Perfetto or
/// `chrome://tracing`.
///
/// Each span becomes one `ph: "X"` *complete* event (a begin/end pair in
/// a single record — unlike `B`/`E` pairs, `X` events need no stack
/// discipline, which matters because sibling spans overlap). `pid` is
/// the recording node, `tid` groups events of one trace, and timestamps
/// are microseconds on the shared process clock, so spans from different
/// nodes align on one timeline. Full 64-bit ids travel in `args` as hex
/// strings (JSON numbers lose precision past 2^53).
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = s.start_ns as f64 / 1_000.0;
        let dur = s.end_ns.saturating_sub(s.start_ns) as f64 / 1_000.0;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"eden\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
             \"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":\"{:#x}\",\"span_id\":\"{:#x}\",\
             \"parent_span\":\"{:#x}\",\"stage\":\"{}\"}}}}",
            json_escape(s.name),
            s.node,
            s.trace_id & 0xffff_ffff,
            s.trace_id,
            s.span_id,
            s.parent_span,
            json_escape(s.stage),
        ));
    }
    out.push_str("]}");
    out
}

/// Serializes one flight-recorder event (tagged with its node) as a
/// single JSON object on one line.
pub fn event_jsonl_line(node: u16, e: &FlightEvent) -> String {
    let mut out = format!(
        "{{\"seq\":{},\"at_ns\":{},\"node\":{}",
        e.seq, e.at_ns, node
    );
    let mut kind = |k: &str| out.push_str(&format!(",\"kind\":\"{k}\""));
    match &e.event {
        KernelEvent::Crash { obj } => {
            kind("crash");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\""));
        }
        KernelEvent::Reincarnation { obj, version } => {
            kind("reincarnation");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\",\"version\":{version}"));
        }
        KernelEvent::CheckpointWrite { obj, version } => {
            kind("checkpoint");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\",\"version\":{version}"));
        }
        KernelEvent::MoveOut { obj, dst } => {
            kind("move_out");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\",\"dst\":{dst}"));
        }
        KernelEvent::MoveIn { obj, src } => {
            kind("move_in");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\",\"src\":{src}"));
        }
        KernelEvent::Forward { obj, dst } => {
            kind("forward");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\",\"dst\":{dst}"));
        }
        KernelEvent::Retransmit { inv_id, dst } => {
            kind("retransmit");
            out.push_str(&format!(",\"inv_id\":{inv_id},\"dst\":{dst}"));
        }
        KernelEvent::RemoteTimeout { dst } => {
            kind("remote_timeout");
            out.push_str(&format!(",\"dst\":{dst}"));
        }
        KernelEvent::WhereIsBroadcast { obj } => {
            kind("where_is");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\""));
        }
        KernelEvent::DirectoryQuery { obj, home } => {
            kind("dir_query");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\",\"home\":{home}"));
        }
        KernelEvent::DirectoryRegister { obj, home } => {
            kind("dir_register");
            out.push_str(&format!(",\"obj\":\"{obj:#x}\",\"home\":{home}"));
        }
        KernelEvent::MemberSuspect { node } => {
            kind("member_suspect");
            out.push_str(&format!(",\"member\":{node}"));
        }
        KernelEvent::MemberDead { node } => {
            kind("member_dead");
            out.push_str(&format!(",\"member\":{node}"));
        }
        KernelEvent::MemberAlive { node } => {
            kind("member_alive");
            out.push_str(&format!(",\"member\":{node}"));
        }
        KernelEvent::VprocStall {
            worker,
            age_ms,
            queued,
        } => {
            kind("vproc_stall");
            out.push_str(&format!(
                ",\"worker\":{worker},\"age_ms\":{age_ms},\"queued\":{queued}"
            ));
        }
        KernelEvent::WriterStall {
            dst,
            age_ms,
            queued,
        } => {
            kind("writer_stall");
            out.push_str(&format!(
                ",\"dst\":{dst},\"age_ms\":{age_ms},\"queued\":{queued}"
            ));
        }
        KernelEvent::SlowInvocation {
            inv_id,
            age_ms,
            trace,
        } => {
            kind("slow_invocation");
            out.push_str(&format!(
                ",\"inv_id\":{inv_id},\"age_ms\":{age_ms},\"trace\":\"{trace:#x}\""
            ));
        }
        KernelEvent::InboundDropped { peer, reason } => {
            kind("inbound_dropped");
            out.push_str(&format!(
                ",\"peer\":\"{peer}\",\"reason\":\"{}\"",
                reason.as_str()
            ));
        }
        KernelEvent::NodeShutdown => kind("shutdown"),
    }
    out.push('}');
    out
}

/// Serializes several nodes' event streams as one JSONL document,
/// totally ordered by the process-global sequence number.
pub fn events_jsonl(streams: &[(u16, Vec<FlightEvent>)]) -> String {
    let mut tagged: Vec<(u16, &FlightEvent)> = streams
        .iter()
        .flat_map(|(node, events)| events.iter().map(move |e| (*node, e)))
        .collect();
    tagged.sort_by_key(|(_, e)| e.seq);
    let mut out = String::new();
    for (node, e) in tagged {
        out.push_str(&event_jsonl_line(node, e));
        out.push('\n');
    }
    out
}

/// Extracts the raw token following `"key":` in a flat JSON object (the
/// shape [`event_jsonl_line`] emits; keys must not collide as
/// substrings, which the fixed key set guarantees).
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.find('"').map(|end| &stripped[..end])
    } else {
        let end = rest.find([',', '}'])?;
        Some(&rest[..end])
    }
}

fn parse_obj(line: &str) -> Option<u128> {
    let raw = json_field(line, "obj")?;
    u128::from_str_radix(raw.strip_prefix("0x")?, 16).ok()
}

/// Parses one [`event_jsonl_line`] back into the node id and the typed
/// event (the JSONL round-trip used in tests and by tooling).
pub fn parse_jsonl_line(line: &str) -> Option<(u16, FlightEvent)> {
    let seq: u64 = json_field(line, "seq")?.parse().ok()?;
    let at_ns: u64 = json_field(line, "at_ns")?.parse().ok()?;
    let node: u16 = json_field(line, "node")?.parse().ok()?;
    let version = || json_field(line, "version")?.parse::<u64>().ok();
    let dst = || json_field(line, "dst")?.parse::<u16>().ok();
    let event = match json_field(line, "kind")? {
        "crash" => KernelEvent::Crash {
            obj: parse_obj(line)?,
        },
        "reincarnation" => KernelEvent::Reincarnation {
            obj: parse_obj(line)?,
            version: version()?,
        },
        "checkpoint" => KernelEvent::CheckpointWrite {
            obj: parse_obj(line)?,
            version: version()?,
        },
        "move_out" => KernelEvent::MoveOut {
            obj: parse_obj(line)?,
            dst: dst()?,
        },
        "move_in" => KernelEvent::MoveIn {
            obj: parse_obj(line)?,
            src: json_field(line, "src")?.parse().ok()?,
        },
        "forward" => KernelEvent::Forward {
            obj: parse_obj(line)?,
            dst: dst()?,
        },
        "retransmit" => KernelEvent::Retransmit {
            inv_id: json_field(line, "inv_id")?.parse().ok()?,
            dst: dst()?,
        },
        "remote_timeout" => KernelEvent::RemoteTimeout { dst: dst()? },
        "where_is" => KernelEvent::WhereIsBroadcast {
            obj: parse_obj(line)?,
        },
        "dir_query" => KernelEvent::DirectoryQuery {
            obj: parse_obj(line)?,
            home: json_field(line, "home")?.parse().ok()?,
        },
        "dir_register" => KernelEvent::DirectoryRegister {
            obj: parse_obj(line)?,
            home: json_field(line, "home")?.parse().ok()?,
        },
        "member_suspect" => KernelEvent::MemberSuspect {
            node: json_field(line, "member")?.parse().ok()?,
        },
        "member_dead" => KernelEvent::MemberDead {
            node: json_field(line, "member")?.parse().ok()?,
        },
        "member_alive" => KernelEvent::MemberAlive {
            node: json_field(line, "member")?.parse().ok()?,
        },
        "vproc_stall" => KernelEvent::VprocStall {
            worker: json_field(line, "worker")?.parse().ok()?,
            age_ms: json_field(line, "age_ms")?.parse().ok()?,
            queued: json_field(line, "queued")?.parse().ok()?,
        },
        "writer_stall" => KernelEvent::WriterStall {
            dst: dst()?,
            age_ms: json_field(line, "age_ms")?.parse().ok()?,
            queued: json_field(line, "queued")?.parse().ok()?,
        },
        "slow_invocation" => KernelEvent::SlowInvocation {
            inv_id: json_field(line, "inv_id")?.parse().ok()?,
            age_ms: json_field(line, "age_ms")?.parse().ok()?,
            trace: u64::from_str_radix(
                json_field(line, "trace")?.strip_prefix("0x").unwrap_or("x"),
                16,
            )
            .ok()?,
        },
        "inbound_dropped" => KernelEvent::InboundDropped {
            peer: json_field(line, "peer")?.parse().ok()?,
            reason: crate::recorder::InboundDropReason::parse(json_field(line, "reason")?)?,
        },
        "shutdown" => KernelEvent::NodeShutdown,
        _ => return None,
    };
    Some((node, FlightEvent { seq, at_ns, event }))
}

/// Checks that `text` is one well-formed JSON value (objects, arrays,
/// strings with escapes, numbers, booleans, null) with nothing trailing.
/// A tiny recursive-descent validator so CI and tests need no external
/// JSON tooling.
pub fn validate_json(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    json_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn json_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                json_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                json_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                json_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => json_string(b, i),
        Some(b't') => json_literal(b, i, "true"),
        Some(b'f') => json_literal(b, i, "false"),
        Some(b'n') => json_literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            Ok(())
        }
        _ => Err(format!("unexpected byte at {i}")),
    }
}

fn json_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn json_literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_metrics(node: &str, values: &[u64]) -> NodeMetrics {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        NodeMetrics {
            node: node.to_string(),
            counters: [("kernel.remote_sent".to_string(), values.len() as u64)]
                .into_iter()
                .collect(),
            gauges: [("coord.queue_depth".to_string(), 2i64)]
                .into_iter()
                .collect(),
            histograms: [("invoke.local".to_string(), h.snapshot())]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn prometheus_round_trips_line_by_line() {
        let parts = vec![
            sample_metrics("0", &[100, 200, 300]),
            sample_metrics("1", &[50]),
        ];
        let merged = merge_metrics(&parts);
        let all = [parts, vec![merged]].concat();
        let text = prometheus_text(&all);
        let mut samples = 0usize;
        for line in text.lines() {
            if line.starts_with("# TYPE ") {
                let rest = line.strip_prefix("# TYPE ").unwrap();
                let mut it = rest.split(' ');
                assert!(it.next().unwrap().starts_with("eden_"));
                assert!(matches!(it.next(), Some("counter" | "gauge" | "histogram")));
                continue;
            }
            let s =
                parse_prometheus_line(line).unwrap_or_else(|| panic!("unparsable line: {line}"));
            assert!(s.name.starts_with("eden_"));
            assert!(s.labels.iter().any(|(k, _)| k == "node"));
            samples += 1;
        }
        assert!(samples > 10, "expected many sample lines, got {samples}");
        // Per-node and cluster-merged histogram series both present.
        assert!(text.contains("eden_invoke_local_count{node=\"0\"} 3"));
        assert!(text.contains("eden_invoke_local_count{node=\"1\"} 1"));
        assert!(text.contains("eden_invoke_local_count{node=\"cluster\"} 4"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn cumulative_bucket_counts_match_the_count_series() {
        let parts = vec![sample_metrics("0", &[10, 20, 30, 1_000_000])];
        let text = prometheus_text(&parts);
        let buckets: Vec<PromSample> = text
            .lines()
            .filter_map(parse_prometheus_line)
            .filter(|s| s.name == "eden_invoke_local_bucket")
            .collect();
        let last_bucket = buckets.last().unwrap();
        assert!(last_bucket.labels.contains(&("le".into(), "+Inf".into())));
        assert_eq!(last_bucket.value, 4.0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_x_event_per_span() {
        let spans = vec![
            SpanRecord {
                trace_id: 7,
                span_id: 1,
                parent_span: 0,
                node: 0,
                name: "invoke",
                stage: crate::trace::stage::NONE,
                start_ns: 1_000,
                end_ns: 9_000,
            },
            SpanRecord {
                trace_id: 7,
                span_id: 2,
                parent_span: 1,
                node: 1,
                name: "execute",
                stage: crate::trace::stage::EXECUTE,
                start_ns: 2_000,
                end_ns: 8_000,
            },
        ];
        let json = chrome_trace_json(&spans);
        validate_json(&json).expect("valid JSON");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), spans.len());
        assert!(json.contains("\"name\":\"invoke\""));
        assert!(
            json.contains("\"stage\":\"execute\""),
            "stage tag in: {json}"
        );
        assert!(json.contains("\"dur\":8.000"), "µs duration in: {json}");
        // Empty input is still a valid document.
        validate_json(&chrome_trace_json(&[])).expect("empty trace valid");
    }

    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events = [
            KernelEvent::Crash {
                obj: 0x1234_5678_9abc_def0_u128 << 40,
            },
            KernelEvent::Reincarnation { obj: 7, version: 3 },
            KernelEvent::CheckpointWrite { obj: 7, version: 4 },
            KernelEvent::MoveOut { obj: 9, dst: 2 },
            KernelEvent::MoveIn { obj: 9, src: 1 },
            KernelEvent::Forward { obj: 9, dst: 3 },
            KernelEvent::Retransmit { inv_id: 42, dst: 1 },
            KernelEvent::RemoteTimeout { dst: 5 },
            KernelEvent::WhereIsBroadcast { obj: u128::MAX },
            KernelEvent::VprocStall {
                worker: u16::MAX,
                age_ms: 1500,
                queued: 12,
            },
            KernelEvent::WriterStall {
                dst: 4,
                age_ms: 333,
                queued: 64,
            },
            KernelEvent::SlowInvocation {
                inv_id: 99,
                age_ms: 2000,
                trace: 0x0001_0000_0000_0001,
            },
            KernelEvent::InboundDropped {
                peer: "10.0.0.7:51123".parse().expect("literal addr"),
                reason: crate::recorder::InboundDropReason::Oversized,
            },
            KernelEvent::InboundDropped {
                peer: "[::1]:9000".parse().expect("literal addr"),
                reason: crate::recorder::InboundDropReason::Codec,
            },
            KernelEvent::NodeShutdown,
        ];
        for (i, event) in events.into_iter().enumerate() {
            let fe = FlightEvent {
                seq: i as u64,
                at_ns: 1_000 + i as u64,
                event,
            };
            let line = event_jsonl_line(3, &fe);
            validate_json(&line).expect("each line is a JSON object");
            let (node, parsed) =
                parse_jsonl_line(&line).unwrap_or_else(|| panic!("unparsable line: {line}"));
            assert_eq!(node, 3);
            assert_eq!(parsed, fe);
        }
    }

    #[test]
    fn merged_jsonl_stream_is_totally_ordered_by_seq() {
        let mk = |seq: u64| FlightEvent {
            seq,
            at_ns: 0,
            event: KernelEvent::NodeShutdown,
        };
        let streams = vec![(1u16, vec![mk(4), mk(9)]), (0u16, vec![mk(2), mk(7)])];
        let text = events_jsonl(&streams);
        let seqs: Vec<u64> = text
            .lines()
            .map(|l| parse_jsonl_line(l).unwrap().1.seq)
            .collect();
        assert_eq!(seqs, vec![2, 4, 7, 9]);
    }

    #[test]
    fn validate_json_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "{\"a\":[1,2.5,-3e4],\"b\":\"x\\\"y\",\"c\":null,\"d\":true}",
            "  [ {\"k\": false} ] ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in ["", "{", "{\"a\"}", "[1,]", "{}extra", "{'a':1}"] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
