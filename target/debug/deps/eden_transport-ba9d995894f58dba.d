/root/repo/target/debug/deps/eden_transport-ba9d995894f58dba.d: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/libeden_transport-ba9d995894f58dba.rlib: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/libeden_transport-ba9d995894f58dba.rmeta: crates/transport/src/lib.rs crates/transport/src/latency.rs crates/transport/src/mesh.rs crates/transport/src/stats.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/latency.rs:
crates/transport/src/mesh.rs:
crates/transport/src/stats.rs:
crates/transport/src/tcp.rs:
