// Fixture: L4 panic-hygiene violations (scanned as crates/core/src/x.rs).

fn drain(state: &Mutex<Vec<u64>>, rx: &Receiver<u64>, tx: &Sender<u64>) {
    let mut queue = state.lock().unwrap();
    queue.push(rx.recv().unwrap());
    tx.send(1).expect("peer gone");
    let handle = std::thread::current();
    let _ = state
        .lock()
        .expect("poisoned");
}
