//! The EFS client facade: paths, files, directories and transactions.
//!
//! Everything here is sugar over invocations — the facade holds only a
//! kernel handle and the root directory capability, so any node in the
//! system can mount the same EFS by sharing that one capability (which
//! is exactly how Eden intends sharing to work: possession of a
//! capability *is* access).

use bytes::Bytes;
use eden_capability::Capability;
use eden_kernel::{EdenError, Node};
use eden_wire::{Status, Value};

use crate::dir::DirectoryType;
use crate::file::FileType;
use crate::txn::{Transaction, TxnManagerType};

/// EFS client errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EfsError {
    /// A path component was missing.
    NotFound(String),
    /// A path was malformed (empty component, no leading `/`, …).
    BadPath(String),
    /// The path exists but is the wrong kind of object for the call.
    WrongKind(String),
    /// The kernel reported an error.
    Kernel(EdenError),
}

impl core::fmt::Display for EfsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EfsError::NotFound(p) => write!(f, "not found: {p}"),
            EfsError::BadPath(p) => write!(f, "bad path: {p}"),
            EfsError::WrongKind(p) => write!(f, "wrong object kind at: {p}"),
            EfsError::Kernel(e) => write!(f, "kernel: {e}"),
        }
    }
}

impl std::error::Error for EfsError {}

impl From<EdenError> for EfsError {
    fn from(e: EdenError) -> Self {
        EfsError::Kernel(e)
    }
}

/// A mounted Eden File System.
///
/// Cheap to clone; clones share the same root.
#[derive(Clone)]
pub struct Efs {
    node: Node,
    root: Capability,
}

impl Efs {
    /// Creates a fresh EFS: a new root directory on `node`.
    pub fn format(node: Node) -> Result<Efs, EfsError> {
        let root = node.create_object(DirectoryType::NAME, &[])?;
        Ok(Efs { node, root })
    }

    /// Mounts an existing EFS through its root capability — typically on
    /// a different node than the one that formatted it.
    pub fn mount(node: Node, root: Capability) -> Efs {
        Efs { node, root }
    }

    /// The root directory capability (share it to share the filesystem).
    pub fn root(&self) -> Capability {
        self.root
    }

    /// The kernel this client issues invocations through.
    pub fn node(&self) -> &Node {
        &self.node
    }

    fn split(path: &str) -> Result<Vec<&str>, EfsError> {
        if !path.starts_with('/') {
            return Err(EfsError::BadPath(format!("{path} (must be absolute)")));
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.is_empty() {
            return Err(EfsError::BadPath(format!("{path} (no components)")));
        }
        Ok(comps)
    }

    /// Resolves the directory holding the final component, creating
    /// intermediate directories when `create` is set. Returns
    /// `(directory, final_component)`.
    fn resolve_parent<'p>(
        &self,
        path: &'p str,
        create: bool,
    ) -> Result<(Capability, &'p str), EfsError> {
        let comps = Self::split(path)?;
        let (last, dirs) = comps.split_last().expect("nonempty");
        let mut current = self.root;
        for comp in dirs {
            match self
                .node
                .invoke(current, "lookup", &[Value::Str(comp.to_string())])
            {
                Ok(out) => {
                    current = out
                        .first()
                        .and_then(Value::as_cap)
                        .ok_or_else(|| EfsError::WrongKind(comp.to_string()))?;
                }
                Err(EdenError::Invoke(Status::AppError { code: 404, .. })) if create => {
                    let out =
                        self.node
                            .invoke(current, "mkdir", &[Value::Str(comp.to_string())])?;
                    current = out
                        .first()
                        .and_then(Value::as_cap)
                        .ok_or_else(|| EfsError::WrongKind(comp.to_string()))?;
                }
                Err(EdenError::Invoke(Status::AppError { code: 404, .. })) => {
                    return Err(EfsError::NotFound(path.to_string()));
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok((current, last))
    }

    /// Looks up the capability at `path`.
    pub fn lookup(&self, path: &str) -> Result<Capability, EfsError> {
        let (dir, last) = self.resolve_parent(path, false)?;
        match self
            .node
            .invoke(dir, "lookup", &[Value::Str(last.to_string())])
        {
            Ok(out) => out
                .first()
                .and_then(Value::as_cap)
                .ok_or_else(|| EfsError::WrongKind(path.to_string())),
            Err(EdenError::Invoke(Status::AppError { code: 404, .. })) => {
                Err(EfsError::NotFound(path.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Creates (or opens) the file at `path`, creating directories along
    /// the way. Returns its capability.
    pub fn create_file(&self, path: &str) -> Result<Capability, EfsError> {
        let (dir, last) = self.resolve_parent(path, true)?;
        match self
            .node
            .invoke(dir, "lookup", &[Value::Str(last.to_string())])
        {
            Ok(out) => out
                .first()
                .and_then(Value::as_cap)
                .ok_or_else(|| EfsError::WrongKind(path.to_string())),
            Err(EdenError::Invoke(Status::AppError { code: 404, .. })) => {
                let file = self.node.create_object(FileType::NAME, &[])?;
                self.node.invoke(
                    dir,
                    "bind",
                    &[Value::Str(last.to_string()), Value::Cap(file)],
                )?;
                Ok(file)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Writes `data` as a new version of the file at `path` (creating it
    /// and intermediate directories as needed). Returns the version.
    pub fn write(&self, path: &str, data: &[u8]) -> Result<u64, EfsError> {
        let file = self.create_file(path)?;
        let out = self
            .node
            .invoke(file, "write", &[Value::Blob(Bytes::copy_from_slice(data))])?;
        Ok(out.first().and_then(Value::as_u64).unwrap_or(0))
    }

    /// Reads the latest version of the file at `path`.
    pub fn read(&self, path: &str) -> Result<Bytes, EfsError> {
        let file = self.lookup(path)?;
        self.read_file(file, None)
    }

    /// Reads a specific version of the file at `path`.
    pub fn read_version(&self, path: &str, version: u64) -> Result<Bytes, EfsError> {
        let file = self.lookup(path)?;
        self.read_file(file, Some(version))
    }

    fn read_file(&self, file: Capability, version: Option<u64>) -> Result<Bytes, EfsError> {
        let args: Vec<Value> = version.map(Value::U64).into_iter().collect();
        match self.node.invoke(file, "read", &args) {
            Ok(out) => Ok(out
                .first()
                .and_then(Value::as_blob)
                .cloned()
                .unwrap_or_default()),
            Err(EdenError::Invoke(Status::AppError { code: 404, .. })) => {
                Err(EfsError::NotFound("version".into()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Lists the retained version numbers of the file at `path`.
    pub fn history(&self, path: &str) -> Result<Vec<u64>, EfsError> {
        let file = self.lookup(path)?;
        let out = self.node.invoke(file, "history", &[])?;
        Ok(out
            .first()
            .and_then(Value::as_list)
            .map(|l| l.iter().filter_map(Value::as_u64).collect())
            .unwrap_or_default())
    }

    /// Creates the directory at `path` (with intermediates). Idempotent.
    pub fn mkdir_p(&self, path: &str) -> Result<Capability, EfsError> {
        let (dir, last) = self.resolve_parent(path, true)?;
        match self
            .node
            .invoke(dir, "lookup", &[Value::Str(last.to_string())])
        {
            Ok(out) => out
                .first()
                .and_then(Value::as_cap)
                .ok_or_else(|| EfsError::WrongKind(path.to_string())),
            Err(EdenError::Invoke(Status::AppError { code: 404, .. })) => {
                let out = self
                    .node
                    .invoke(dir, "mkdir", &[Value::Str(last.to_string())])?;
                out.first()
                    .and_then(Value::as_cap)
                    .ok_or_else(|| EfsError::WrongKind(path.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Lists the names bound in the directory at `path` (`"/"` = root).
    pub fn list(&self, path: &str) -> Result<Vec<String>, EfsError> {
        let dir = if path == "/" {
            self.root
        } else {
            self.lookup(path)?
        };
        let out = self.node.invoke(dir, "list", &[])?;
        Ok(out
            .first()
            .and_then(Value::as_list)
            .map(|l| {
                l.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Removes the binding at `path` (the object itself lives on until
    /// destroyed; EFS names are bindings, not ownership).
    pub fn unbind(&self, path: &str) -> Result<(), EfsError> {
        let (dir, last) = self.resolve_parent(path, false)?;
        match self
            .node
            .invoke(dir, "unbind", &[Value::Str(last.to_string())])
        {
            Ok(_) => Ok(()),
            Err(EdenError::Invoke(Status::AppError { code: 404, .. })) => {
                Err(EfsError::NotFound(path.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Publishes the latest version of the file at `path` as a frozen,
    /// cacheable blob object and returns its capability.
    pub fn publish(&self, path: &str) -> Result<Capability, EfsError> {
        let file = self.lookup(path)?;
        let out = self.node.invoke(file, "publish", &[])?;
        out.first()
            .and_then(Value::as_cap)
            .ok_or_else(|| EfsError::WrongKind(path.to_string()))
    }

    /// Creates a transaction manager object using the named concurrency
    /// control (`"2pl"` or `"occ"`).
    pub fn transaction_manager(&self, cc: &str) -> Result<Capability, EfsError> {
        let type_name = TxnManagerType::name_for(cc);
        Ok(self.node.create_object(&type_name, &[])?)
    }

    /// Begins a transaction on `manager`.
    pub fn begin(&self, manager: Capability) -> Result<Transaction, EfsError> {
        Ok(Transaction::begin(self.node.clone(), manager)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_validates_paths() {
        assert!(Efs::split("/a/b").is_ok());
        assert_eq!(Efs::split("/a//b").unwrap(), vec!["a", "b"]);
        assert!(Efs::split("relative").is_err());
        assert!(Efs::split("/").is_err());
    }
}
