//! Prints the span tree of one cross-node invocation (README capture).
//!
//! With `--chrome <path>` it additionally scrapes the trace through a
//! monitor object and writes it as Chrome-trace JSON (load the file in
//! Perfetto or `chrome://tracing`), validating the JSON before exit;
//! `--critpath <path>` writes the same trace's critical-path breakdown
//! as a text table:
//!
//! ```sh
//! cargo run --example span_tree_capture -- \
//!     --chrome trace.json --critpath critpath.txt
//! ```

use eden::apps::counter::CounterType;
use eden::apps::{MonitorClient, MonitorType};
use eden::kernel::Cluster;
use eden::obs::{render_trace, validate_json, SpanRecord};
use eden::wire::Value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{name} needs a path"))
                .clone()
        })
    };
    let chrome_path = flag("--chrome");
    let critpath_path = flag("--critpath");

    let c = Cluster::builder()
        .nodes(2)
        .register(|| Box::new(CounterType))
        .register(|| Box::new(MonitorType))
        .build();
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(1).invoke(cap, "add", &[Value::I64(5)]).unwrap();

    let root = c
        .node(1)
        .obs()
        .traces()
        .spans()
        .into_iter()
        .find(|s| s.name == "invoke" && s.parent_span == 0)
        .expect("root span");
    let spans: Vec<SpanRecord> = c
        .nodes()
        .iter()
        .flat_map(|n| n.obs().traces().spans())
        .filter(|s| s.trace_id == root.trace_id)
        .collect();
    print!("{}", render_trace(&spans, root.trace_id));

    if chrome_path.is_some() || critpath_path.is_some() {
        let monitor = MonitorClient::for_cluster(&c).expect("create monitor");
        if let Some(path) = chrome_path {
            let json = monitor
                .chrome_trace(Some(root.trace_id))
                .expect("scrape trace");
            validate_json(&json).expect("exported trace is valid JSON");
            std::fs::write(&path, &json).expect("write chrome trace");
            eprintln!("wrote {} bytes of Chrome-trace JSON to {path}", json.len());
        }
        if let Some(path) = critpath_path {
            let cp = monitor
                .critical_path(root.trace_id)
                .expect("scrape critical path")
                .expect("the trace stitches into a report");
            std::fs::write(&path, cp.text_table()).expect("write critpath table");
            eprintln!(
                "wrote critical-path table ({:.1}% accounted) to {path}",
                cp.coverage() * 100.0
            );
        }
    }
    c.shutdown();
}
