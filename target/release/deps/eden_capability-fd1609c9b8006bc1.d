/root/repo/target/release/deps/eden_capability-fd1609c9b8006bc1.d: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs

/root/repo/target/release/deps/libeden_capability-fd1609c9b8006bc1.rlib: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs

/root/repo/target/release/deps/libeden_capability-fd1609c9b8006bc1.rmeta: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs

crates/capability/src/lib.rs:
crates/capability/src/clist.rs:
crates/capability/src/name.rs:
crates/capability/src/rights.rs:
