/root/repo/target/debug/deps/repro-920a57523ea8a78b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-920a57523ea8a78b: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
