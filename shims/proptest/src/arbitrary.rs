//! `any::<T>()` — full-range strategies for primitive types.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for one primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => { $(
        impl Strategy for AnyPrimitive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
        impl Arbitrary for $ty {
            type Strategy = AnyPrimitive<$ty>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )* };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for u128 {
    type Strategy = AnyPrimitive<u128>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as i128
    }
}

impl Arbitrary for i128 {
    type Strategy = AnyPrimitive<i128>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;
    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}
