/root/repo/target/release/deps/repro-87fc3a6c606bb2f7.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-87fc3a6c606bb2f7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
