//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The number of elements a collection strategy generates
/// (half-open `[lo, hi)` like real proptest's size ranges).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy producing `Vec`s of `element` values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeMap`s.
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

/// Generates maps with up to `size` entries (duplicate keys collapse).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord + Debug,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut out = BTreeMap::new();
        for _ in 0..n {
            out.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        out
    }
}
