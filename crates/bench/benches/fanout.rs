//! E12 macro-benchmark: the bounded virtual-processor pool under
//! fan-out (each iteration runs the full 64-client × 8-object spin
//! batch against one node).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eden_bench::exp_e12_fanout::{fanout_batch_seconds, CLIENTS};

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout_batch");
    for workers in [4usize, CLIENTS] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| fanout_batch_seconds(w))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fanout
}
criterion_main!(benches);
