/root/repo/target/debug/deps/trace-a0c8a0735f26173c.d: tests/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-a0c8a0735f26173c.rmeta: tests/trace.rs Cargo.toml

tests/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
