//! Loom models for the lock-free histogram: concurrent `record` against
//! `snapshot` and `merge` must never lose a committed sample, corrupt a
//! bucket, or let a snapshot's totals run ahead of the per-bucket
//! counts' invariants. Compiled only under `RUSTFLAGS="--cfg loom"`;
//! run with `scripts/ci.sh loom`.
#![cfg(loom)]

use eden_obs::{Histogram, HistogramSnapshot};
use loom::sync::Arc;

/// Concurrent recorders: after joining, every sample is present in the
/// final snapshot with exact count/sum/min/max.
#[test]
fn model_concurrent_records_all_land() {
    loom::model(|| {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                let h = h.clone();
                loom::thread::spawn(move || {
                    for i in 0..32u64 {
                        h.record(t * 1000 + i);
                        loom::thread::yield_now();
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3 * 32);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2031);
        let expected_sum: u64 = (0..3u64)
            .flat_map(|t| (0..32u64).map(move |i| t * 1000 + i))
            .sum();
        assert_eq!(s.sum, expected_sum);
        assert_eq!(s.buckets().iter().sum::<u64>(), s.count);
    });
}

/// A snapshot taken *while* recorders run may be mid-flight, but it must
/// still be internally coherent enough to merge: bucket totals never
/// exceed the final count, and merging racy snapshots with the final one
/// never underflows or corrupts.
#[test]
fn model_snapshot_races_record_without_corruption() {
    loom::model(|| {
        let h = Arc::new(Histogram::new());
        let writer = {
            let h = h.clone();
            loom::thread::spawn(move || {
                for i in 1..=64u64 {
                    h.record(i);
                }
            })
        };
        let reader = {
            let h = h.clone();
            loom::thread::spawn(move || {
                let mut racy = Vec::new();
                for _ in 0..8 {
                    loom::thread::yield_now();
                    racy.push(h.snapshot());
                }
                racy
            })
        };
        let racy = reader.join().unwrap();
        writer.join().unwrap();
        let fin = h.snapshot();
        assert_eq!(fin.count, 64);
        for s in &racy {
            assert!(s.count <= 64, "snapshot count ran ahead of the writer");
            assert!(s.sum <= fin.sum);
            assert!(s.buckets().iter().sum::<u64>() <= 64);
            // Each racy snapshot merges cleanly (merge is pure addition,
            // so coherence here is about no poisoned/torn values).
            let mut m = HistogramSnapshot::empty();
            m.merge(s);
            assert_eq!(m.count, s.count);
        }
    });
}

/// Merging per-thread snapshots concurrently with ongoing recording on
/// a third histogram is safe and exact once everything joins.
#[test]
fn model_merge_is_exact_after_join() {
    loom::model(|| {
        let a = Arc::new(Histogram::new());
        let b = Arc::new(Histogram::new());
        let ta = {
            let a = a.clone();
            loom::thread::spawn(move || {
                for i in 0..40u64 {
                    a.record(i * 3);
                }
            })
        };
        let tb = {
            let b = b.clone();
            loom::thread::spawn(move || {
                for i in 0..25u64 {
                    b.record(i * 7);
                }
            })
        };
        ta.join().unwrap();
        tb.join().unwrap();
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 65);
        assert_eq!(merged.min, 0);
        assert_eq!(merged.max, 24 * 7);
        assert_eq!(
            merged.sum,
            (0..40u64).map(|i| i * 3).sum::<u64>() + (0..25u64).map(|i| i * 7).sum::<u64>()
        );
    });
}
