/root/repo/target/debug/deps/eden_capability-0656b00841838344.d: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs

/root/repo/target/debug/deps/eden_capability-0656b00841838344: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs

crates/capability/src/lib.rs:
crates/capability/src/clist.rs:
crates/capability/src/name.rs:
crates/capability/src/rights.rs:
