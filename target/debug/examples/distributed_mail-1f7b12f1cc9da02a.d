/root/repo/target/debug/examples/distributed_mail-1f7b12f1cc9da02a.d: examples/distributed_mail.rs

/root/repo/target/debug/examples/distributed_mail-1f7b12f1cc9da02a: examples/distributed_mail.rs

examples/distributed_mail.rs:
