// Fixture: L1 pool-discipline violations (scanned as crates/core/src/worker.rs).

fn redelivery_task() {
    std::thread::spawn(|| {
        println!("redelivering outside the pool");
    });
}

fn named_task() {
    std::thread::Builder::new()
        .name("eden-rogue".to_string())
        .spawn(|| {})
        .expect("spawn");
}
