/root/repo/target/release/deps/eden_apps-d5faddddd6b49be7.d: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/monitor.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

/root/repo/target/release/deps/libeden_apps-d5faddddd6b49be7.rlib: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/monitor.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

/root/repo/target/release/deps/libeden_apps-d5faddddd6b49be7.rmeta: crates/apps/src/lib.rs crates/apps/src/calendar.rs crates/apps/src/counter.rs crates/apps/src/hierarchy.rs crates/apps/src/mail.rs crates/apps/src/monitor.rs crates/apps/src/policy.rs crates/apps/src/queue.rs

crates/apps/src/lib.rs:
crates/apps/src/calendar.rs:
crates/apps/src/counter.rs:
crates/apps/src/hierarchy.rs:
crates/apps/src/mail.rs:
crates/apps/src/monitor.rs:
crates/apps/src/policy.rs:
crates/apps/src/queue.rs:
