//! Figure 4, executable: the four parts of an Eden object.
//!
//! §4.1 names them: the unique **name**, the **representation** (data +
//! capability segments, the only part ever on long-term storage), the
//! **type** (a shared type manager), and the **short-term state**
//! (temporal data, synchronization state, processes — "never written to
//! long-term storage"). This test walks one object through checkpoint,
//! crash and reincarnation and checks each part behaves per its spec.

use std::time::Duration;

use eden::capability::Rights;
use eden::kernel::{Cluster, OpCtx, OpError, OpResult, TypeManager, TypeSpec};
use eden::wire::Value;

/// A type whose representation and short-term state are separately
/// observable.
struct Specimen;

impl TypeManager for Specimen {
    fn spec(&self) -> TypeSpec {
        TypeSpec::new("specimen")
            .class("all", 2)
            .op("set_longterm", "all", Rights::WRITE)
            .op("get_longterm", "all", Rights::READ)
            .op("set_shortterm", "all", Rights::WRITE)
            .op("get_shortterm", "all", Rights::READ)
            .op("link", "all", Rights::WRITE)
            .op("follow", "all", Rights::READ)
            .op("checkpoint", "all", Rights::CHECKPOINT)
            .op("crash", "all", Rights::OWNER)
    }

    fn dispatch(&self, ctx: &OpCtx<'_>, op: &str, args: &[Value]) -> OpResult {
        match op {
            "set_longterm" => {
                let v = OpCtx::str_arg(args, 0)?.to_string();
                ctx.mutate_repr(|r| r.put_str("data", &v))?;
                Ok(vec![])
            }
            "get_longterm" => Ok(vec![ctx
                .read_repr(|r| r.get_str("data"))
                .map(Value::Str)
                .unwrap_or(Value::Unit)]),
            "set_shortterm" => {
                ctx.scratch_put("temp", args.first().cloned().unwrap_or(Value::Unit));
                Ok(vec![])
            }
            "get_shortterm" => Ok(vec![ctx.scratch_get("temp").unwrap_or(Value::Unit)]),
            "link" => {
                // Store a capability in the capability segment.
                let peer = OpCtx::cap_arg(args, 0)?;
                ctx.mutate_repr(|r| r.caps_mut().put("peer", peer))?;
                Ok(vec![])
            }
            "follow" => {
                // Use the stored capability: invoke through it.
                let peer = ctx
                    .read_repr(|r| r.caps().get("peer"))
                    .ok_or_else(|| OpError::app(404, "no peer linked"))?;
                let out = ctx.invoke(peer, "get_longterm", &[])?;
                Ok(out)
            }
            "checkpoint" => {
                let v = ctx.checkpoint()?;
                Ok(vec![Value::U64(v)])
            }
            "crash" => {
                ctx.crash();
                Ok(vec![])
            }
            other => Err(OpError::no_such_op(other)),
        }
    }
}

fn cluster() -> Cluster {
    Cluster::builder()
        .nodes(2)
        .register(|| Box::new(Specimen))
        .build()
}

#[test]
fn the_name_is_unique_and_survives_the_whole_lifecycle() {
    let c = cluster();
    let a = c.node(0).create_object("specimen", &[]).unwrap();
    let b = c.node(0).create_object("specimen", &[]).unwrap();
    assert_ne!(a.name(), b.name(), "names are unique");
    assert_eq!(
        a.name().birth_node(),
        c.node(0).node_id(),
        "birth-node hint"
    );

    // The same name designates the object across checkpoint + crash.
    c.node(0)
        .invoke(a, "set_longterm", &[Value::from("v1")])
        .unwrap();
    c.node(0).invoke(a, "checkpoint", &[]).unwrap();
    c.node(0).invoke(a, "crash", &[]).unwrap();
    let out = c.node(0).invoke(a, "get_longterm", &[]).unwrap();
    assert_eq!(out, vec![Value::Str("v1".into())]);
}

#[test]
fn representation_persists_and_short_term_state_does_not() {
    let c = cluster();
    let cap = c.node(0).create_object("specimen", &[]).unwrap();
    c.node(0)
        .invoke(cap, "set_longterm", &[Value::from("durable")])
        .unwrap();
    c.node(0)
        .invoke(cap, "set_shortterm", &[Value::from("volatile")])
        .unwrap();
    // Both visible while active.
    assert_eq!(
        c.node(0).invoke(cap, "get_shortterm", &[]).unwrap(),
        vec![Value::Str("volatile".into())]
    );

    c.node(0).invoke(cap, "checkpoint", &[]).unwrap();
    c.node(0).invoke(cap, "crash", &[]).unwrap();

    // After reincarnation: representation restored, short-term reset —
    // "the short-term state … is never written to long-term storage".
    assert_eq!(
        c.node(0).invoke(cap, "get_longterm", &[]).unwrap(),
        vec![Value::Str("durable".into())]
    );
    assert_eq!(
        c.node(0).invoke(cap, "get_shortterm", &[]).unwrap(),
        vec![Value::Unit]
    );
}

#[test]
fn capability_segment_survives_checkpoint_and_still_conveys_authority() {
    let c = cluster();
    let target = c.node(1).create_object("specimen", &[]).unwrap();
    c.node(1)
        .invoke(target, "set_longterm", &[Value::from("linked data")])
        .unwrap();

    let holder = c.node(0).create_object("specimen", &[]).unwrap();
    c.node(0)
        .invoke(holder, "link", &[Value::Cap(target.restrict(Rights::READ))])
        .unwrap();
    c.node(0).invoke(holder, "checkpoint", &[]).unwrap();
    c.node(0).invoke(holder, "crash", &[]).unwrap();

    // The reincarnated holder's capability segment still works — and
    // the stored capability's restriction still holds.
    let out = c.node(0).invoke(holder, "follow", &[]).unwrap();
    assert_eq!(out, vec![Value::Str("linked data".into())]);
}

#[test]
fn type_code_is_shared_among_instances() {
    // "On a single node, the type code can be shared by several
    // instances of the type": many instances, one manager, distinct
    // representations.
    let c = cluster();
    let caps: Vec<_> = (0..10)
        .map(|i| {
            let cap = c.node(0).create_object("specimen", &[]).unwrap();
            c.node(0)
                .invoke(cap, "set_longterm", &[Value::Str(format!("instance {i}"))])
                .unwrap();
            cap
        })
        .collect();
    for (i, cap) in caps.iter().enumerate() {
        let out = c.node(0).invoke(*cap, "get_longterm", &[]).unwrap();
        assert_eq!(out, vec![Value::Str(format!("instance {i}"))]);
    }
}

#[test]
fn invocations_are_the_fourth_part() {
    // "some number of invocations (threads of control)" — several
    // concurrent invocations of one object make progress together.
    let c = cluster();
    let cap = c.node(0).create_object("specimen", &[]).unwrap();
    c.node(0)
        .invoke(cap, "set_longterm", &[Value::from("shared")])
        .unwrap();
    let handles: Vec<_> = (0..8)
        .map(|_| c.node(0).invoke_async(cap, "get_longterm", &[]))
        .collect();
    for h in handles {
        assert_eq!(
            h.wait(Duration::from_secs(5)).unwrap(),
            vec![Value::Str("shared".into())]
        );
    }
}
