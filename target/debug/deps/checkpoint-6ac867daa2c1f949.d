/root/repo/target/debug/deps/checkpoint-6ac867daa2c1f949.d: crates/bench/benches/checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint-6ac867daa2c1f949.rmeta: crates/bench/benches/checkpoint.rs Cargo.toml

crates/bench/benches/checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
