/root/repo/target/debug/examples/distributed_mail-2d3baf07f1b4c745.d: examples/distributed_mail.rs

/root/repo/target/debug/examples/distributed_mail-2d3baf07f1b4c745: examples/distributed_mail.rs

examples/distributed_mail.rs:
