/root/repo/target/debug/deps/eden_capability-962833e4aa251e32.d: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs Cargo.toml

/root/repo/target/debug/deps/libeden_capability-962833e4aa251e32.rmeta: crates/capability/src/lib.rs crates/capability/src/clist.rs crates/capability/src/name.rs crates/capability/src/rights.rs Cargo.toml

crates/capability/src/lib.rs:
crates/capability/src/clist.rs:
crates/capability/src/name.rs:
crates/capability/src/rights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
