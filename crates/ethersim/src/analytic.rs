//! Closed-form Ethernet models used to validate the simulator.
//!
//! Metcalfe & Boggs, *Ethernet: Distributed Packet Switching for Local
//! Computer Networks* (CACM 1976) — the paper the Eden hardware section
//! cites — derives a simple saturation-efficiency model: with `Q` stations
//! always ready to transmit, each contention slot is acquired with
//! probability `A = (1 - 1/Q)^(Q-1)`, so a successful frame of duration
//! `P` costs on average `W · (1-A)/A` slot times `W` of contention.
//! Efficiency is `P / (P + W·(1-A)/A)`.
//!
//! The simulator's saturation throughput is checked against this curve in
//! the integration tests (the simulated MAC has extra costs — jam,
//! interframe gap, capture effects — so agreement is required only to
//! shape and ballpark, which is also all the reproduction brief asks of
//! benchmarks).

/// The per-slot acquisition probability with `q` saturated stations.
pub fn acquisition_probability(q: usize) -> f64 {
    assert!(q >= 1, "need at least one station");
    if q == 1 {
        return 1.0;
    }
    (1.0 - 1.0 / q as f64).powi(q as i32 - 1)
}

/// Mean contention slots preceding a successful acquisition.
pub fn mean_contention_slots(q: usize) -> f64 {
    let a = acquisition_probability(q);
    (1.0 - a) / a
}

/// Metcalfe-Boggs saturation efficiency for `q` stations sending
/// `frame_bits`-bit frames with a `slot_bits`-bit contention slot.
pub fn saturation_efficiency(q: usize, frame_bits: u64, slot_bits: u64) -> f64 {
    let p = frame_bits as f64;
    let w = slot_bits as f64;
    p / (p + w * mean_contention_slots(q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_station_never_contends() {
        assert_eq!(acquisition_probability(1), 1.0);
        assert_eq!(mean_contention_slots(1), 0.0);
        assert_eq!(saturation_efficiency(1, 12_000, 512), 1.0);
    }

    #[test]
    fn acquisition_probability_approaches_inverse_e() {
        // (1 - 1/Q)^(Q-1) → e^-1 ≈ 0.3679 as Q grows.
        let a = acquisition_probability(256);
        assert!((a - (-1.0f64).exp()).abs() < 0.002, "got {a}");
    }

    #[test]
    fn efficiency_decreases_with_stations() {
        let e2 = saturation_efficiency(2, 12_000, 512);
        let e16 = saturation_efficiency(16, 12_000, 512);
        let e64 = saturation_efficiency(64, 12_000, 512);
        assert!(e2 > e16 && e16 > e64);
    }

    #[test]
    fn efficiency_increases_with_frame_size() {
        // The Metcalfe-Boggs table: long frames amortize contention.
        let small = saturation_efficiency(32, 64 * 8, 512);
        let large = saturation_efficiency(32, 1500 * 8, 512);
        assert!(large > small);
        // 1500-byte frames on 10 Mb/s Ethernet stay above 90% even with
        // 32 saturated stations — the famous headline result.
        assert!(large > 0.90, "got {large}");
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_is_rejected() {
        acquisition_probability(0);
    }
}
