//! Fixture suite for the eight eden-lint rules: each rule has at least
//! one known-good and one known-bad snippet with exact expected finding
//! counts, plus suppression fixtures proving `eden-lint: allow(...)`
//! comments cover (and count) findings — with a mandatory rationale for
//! the graph rules. A final test runs the full analysis over the real
//! workspace and requires zero unsuppressed findings — the acceptance
//! bar ci.sh enforces.

use std::path::Path;

use eden_lint::{analyze_files, scan_source, scan_workspace, Finding, LockOrderSpec, Rule};

/// Loads a fixture file's source text.
fn fixture_source(fixture: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Loads a fixture and scans it with the per-file rules under a virtual
/// workspace path that puts it in the right rule scope.
fn scan_fixture(fixture: &str, virtual_path: &str) -> Vec<Finding> {
    scan_source(virtual_path, &fixture_source(fixture))
}

/// Loads fixtures as a virtual workspace and runs all eight rules.
fn scan_graph(fixtures: &[(&str, &str)], spec: &LockOrderSpec) -> Vec<Finding> {
    let files: Vec<(String, String)> = fixtures
        .iter()
        .map(|&(fixture, vpath)| (vpath.to_string(), fixture_source(fixture)))
        .collect();
    analyze_files(&files, spec).report.findings
}

fn count(findings: &[Finding], rule: Rule, suppressed: bool) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed == suppressed)
        .count()
}

#[test]
fn pool_discipline_flags_direct_spawns() {
    let findings = scan_fixture("pool_bad.rs", "crates/core/src/worker.rs");
    assert_eq!(
        count(&findings, Rule::PoolDiscipline, false),
        2,
        "{findings:?}"
    );
    // Both the bare spawn and the Builder chain, at their spawn sites.
    assert_eq!(findings[0].line, 4);
    assert_eq!(findings[1].line, 12);
}

#[test]
fn pool_discipline_ignores_comments_strings_and_tests() {
    let findings = scan_fixture("pool_good.rs", "crates/core/src/worker.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn pool_discipline_is_scoped_to_eden_core() {
    // The same bad file outside crates/core is out of scope.
    let findings = scan_fixture("pool_bad.rs", "crates/apps/src/worker.rs");
    assert_eq!(count(&findings, Rule::PoolDiscipline, false), 0);
    // And vproc.rs itself is the allowlisted implementation site.
    let findings = scan_fixture("pool_bad.rs", "crates/core/src/vproc.rs");
    assert_eq!(count(&findings, Rule::PoolDiscipline, false), 0);
}

#[test]
fn pool_discipline_requires_named_transport_threads() {
    let findings = scan_fixture("pool_transport.rs", "crates/transport/src/tcp.rs");
    // The named spawns pass — including the reader pool's
    // `eden-tcp-rdr-*` threads — while the anonymous spawn and the
    // unnamed Builder chain are flagged.
    assert_eq!(
        count(&findings, Rule::PoolDiscipline, false),
        2,
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .all(|f| f.message.contains("eden-mesh-*/eden-tcp-*")));
}

#[test]
fn capability_discipline_flags_unchecked_entry_points() {
    let findings = scan_fixture("cap_bad.rs", "crates/core/src/node.rs");
    assert_eq!(
        count(&findings, Rule::CapabilityDiscipline, false),
        2,
        "{findings:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("`replicate`")));
    assert!(findings.iter().any(|f| f.message.contains("`persist`")));
}

#[test]
fn capability_discipline_accepts_checks_and_delegation() {
    let findings = scan_fixture("cap_good.rs", "crates/core/src/node.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn wire_exhaustiveness_flags_wildcards_over_status_and_tags() {
    let findings = scan_fixture("wire_bad.rs", "crates/wire/src/status.rs");
    assert_eq!(
        count(&findings, Rule::WireExhaustiveness, false),
        2,
        "{findings:?}"
    );
}

#[test]
fn wire_exhaustiveness_covers_directory_enums() {
    // DirState/DirRegisterKind matches in the directory crate are wire
    // matches too: both wildcard arms are flagged.
    let findings = scan_fixture("wire_dir_bad.rs", "crates/directory/src/shard.rs");
    assert_eq!(
        count(&findings, Rule::WireExhaustiveness, false),
        2,
        "{findings:?}"
    );
    // The same file outside the scoped crates is ignored.
    let findings = scan_fixture("wire_dir_bad.rs", "crates/apps/src/shard.rs");
    assert_eq!(count(&findings, Rule::WireExhaustiveness, false), 0);
}

#[test]
fn wire_exhaustiveness_accepts_enumerated_and_named_arms() {
    let findings = scan_fixture("wire_good.rs", "crates/wire/src/status.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn panic_hygiene_flags_lock_and_channel_unwraps() {
    let findings = scan_fixture("panic_bad.rs", "crates/core/src/x.rs");
    assert_eq!(
        count(&findings, Rule::PanicHygiene, false),
        4,
        "{findings:?}"
    );
}

#[test]
fn panic_hygiene_accepts_recovery_and_tests() {
    let findings = scan_fixture("panic_good.rs", "crates/core/src/x.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
}

#[test]
fn panic_hygiene_covers_the_transport_crate() {
    // The send pipeline's writer threads live in eden-transport; the
    // same lock/channel unwraps are banned there.
    let findings = scan_fixture("panic_bad.rs", "crates/transport/src/writer.rs");
    assert_eq!(
        count(&findings, Rule::PanicHygiene, false),
        4,
        "{findings:?}"
    );
}

#[test]
fn metric_discipline_flags_adhoc_atomic_counters() {
    let findings = scan_fixture("metric_bad.rs", "crates/core/src/telemetry.rs");
    assert_eq!(
        count(&findings, Rule::MetricDiscipline, false),
        3,
        "{findings:?}"
    );
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`invoke_count`")));
    assert!(findings.iter().any(|f| f.message.contains("`bytes_sent`")));
    assert!(findings.iter().any(|f| f.message.contains("`RETRY_TOTAL`")));
    // The transport crate is in scope too.
    let findings = scan_fixture("metric_bad.rs", "crates/transport/src/telemetry.rs");
    assert_eq!(count(&findings, Rule::MetricDiscipline, false), 3);
}

#[test]
fn metric_discipline_accepts_structural_atomics_and_the_stats_cell() {
    let findings = scan_fixture("metric_good.rs", "crates/core/src/telemetry.rs");
    assert_eq!(findings.len(), 0, "{findings:?}");
    // stats.rs implements the public Endpoint::stats() contract: it is
    // the one sanctioned ad-hoc cell.
    let findings = scan_fixture("metric_bad.rs", "crates/transport/src/stats.rs");
    assert_eq!(count(&findings, Rule::MetricDiscipline, false), 0);
    // Crates outside kernel/transport are out of scope.
    let findings = scan_fixture("metric_bad.rs", "crates/obs/src/metric.rs");
    assert_eq!(count(&findings, Rule::MetricDiscipline, false), 0);
}

#[test]
fn lock_order_flags_inversion_unranked_and_reentrant() {
    let spec = LockOrderSpec::parse(
        r#"
        order = ["a.alpha", "a.beta"]
        [[allow]]
        from = "a.beta"
        to = "a.delta"
        reason = "delta is a teardown-only leaf"
        "#,
    );
    let findings = scan_graph(&[("lockorder_bad.rs", "crates/core/src/a.rs")], &spec);
    assert_eq!(count(&findings, Rule::LockOrder, false), 3, "{findings:?}");
    let messages: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == Rule::LockOrder)
        .map(|f| f.message.as_str())
        .collect();
    assert!(messages.iter().any(|m| m.contains("inversion")));
    assert!(messages.iter().any(|m| m.contains("not ranked")));
    assert!(messages.iter().any(|m| m.contains("reentrant")));
}

#[test]
fn lock_order_accepts_ordered_nesting_and_rationale_carrying_allows() {
    let spec = LockOrderSpec::parse("order = [\"a.alpha\", \"a.beta\"]");
    let analysis = analyze_files(
        &[(
            "crates/core/src/a.rs".to_string(),
            fixture_source("lockorder_good.rs"),
        )],
        &spec,
    );
    let findings = &analysis.report.findings;
    assert_eq!(count(findings, Rule::LockOrder, false), 0, "{findings:?}");
    // The inline-exempted inversion still counts, as suppressed.
    assert_eq!(count(findings, Rule::LockOrder, true), 1, "{findings:?}");
    // The DOT artifact reports the graph acyclic modulo the exemption.
    assert!(
        analysis
            .lock_dot
            .contains("// acyclic-modulo-allowed: true"),
        "{}",
        analysis.lock_dot
    );
    assert!(analysis.lock_dot.contains("\"a.alpha\" -> \"a.beta\""));
}

#[test]
fn lock_order_is_scoped_to_kernel_transport_directory() {
    let spec = LockOrderSpec::parse("order = []");
    let findings = scan_graph(&[("lockorder_bad.rs", "crates/apps/src/a.rs")], &spec);
    assert_eq!(count(&findings, Rule::LockOrder, false), 0, "{findings:?}");
}

#[test]
fn blocking_discipline_flags_direct_transitive_and_lexical_sites() {
    let spec = LockOrderSpec::default();
    let findings = scan_graph(&[("blocking_bad.rs", "crates/core/src/work.rs")], &spec);
    assert_eq!(
        count(&findings, Rule::BlockingDiscipline, false),
        3,
        "{findings:?}"
    );
    let messages: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == Rule::BlockingDiscipline)
        .map(|f| f.message.as_str())
        .collect();
    assert!(messages.iter().any(|m| m.contains("`.sleep(…)`")));
    assert!(messages.iter().any(|m| m.contains("`.wait(…)`")));
    assert!(messages
        .iter()
        .any(|m| m.contains("inside a pool submit closure")));
}

#[test]
fn blocking_discipline_accepts_guarded_waits_and_dedicated_threads() {
    let spec = LockOrderSpec::default();
    let findings = scan_graph(
        &[("blocking_good.rs", "crates/directory/src/work.rs")],
        &spec,
    );
    assert_eq!(
        count(&findings, Rule::BlockingDiscipline, false),
        0,
        "{findings:?}"
    );
}

#[test]
fn wire_drift_flags_tag_impl_and_codec_drift() {
    let spec = LockOrderSpec::default();
    let findings = scan_graph(&[("wiredrift_bad.rs", "crates/wire/src/message.rs")], &spec);
    // 1 duplicate tag value, 3 tag-use gaps (PONG undecoded, GONE
    // undecoded, DUP retired), 2 encode-impl gaps (Halt missing, Retired
    // stale), 2 decode-impl gaps (Pong and Halt missing).
    assert_eq!(
        count(&findings, Rule::WireSchemaDrift, false),
        8,
        "{findings:?}"
    );
    let messages: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == Rule::WireSchemaDrift)
        .map(|f| f.message.as_str())
        .collect();
    assert!(messages.iter().any(|m| m.contains("duplicate wire tag")));
    assert!(messages.iter().any(|m| m.contains("retired wire tag")));
    assert!(messages
        .iter()
        .any(|m| m.contains("no `TAG_PONG =>` decode arm") || m.contains("`TAG_PONG` is encoded")));
    assert!(messages.iter().any(|m| m.contains("Message::Halt")));
    assert!(messages.iter().any(|m| m.contains("Message::Retired")));
}

#[test]
fn wire_drift_accepts_a_consistent_schema() {
    let spec = LockOrderSpec::default();
    let findings = scan_graph(
        &[("wiredrift_good.rs", "crates/wire/src/message.rs")],
        &spec,
    );
    assert_eq!(
        count(&findings, Rule::WireSchemaDrift, false),
        0,
        "{findings:?}"
    );
}

#[test]
fn suppressions_cover_and_count_each_rule() {
    // Line rules: one covered violation per rule in suppressed.rs.
    // Graph rules: one rationale-carrying allow each in the two graph
    // fixtures, analyzed together as one virtual workspace.
    let spec = LockOrderSpec::parse("order = [\"graph.alpha\", \"graph.beta\"]");
    let findings = scan_graph(
        &[
            ("suppressed.rs", "crates/core/src/node.rs"),
            ("suppressed_graph.rs", "crates/core/src/graph.rs"),
            ("suppressed_wire.rs", "crates/wire/src/legacy.rs"),
        ],
        &spec,
    );
    for rule in Rule::ALL {
        assert_eq!(count(&findings, rule, true), 1, "{rule}: {findings:?}");
        assert_eq!(count(&findings, rule, false), 0, "{rule}: {findings:?}");
    }
}

#[test]
fn graph_suppressions_without_rationale_do_not_cover() {
    // Strip the rationales from the lock-order allow: the finding must
    // surface unsuppressed, annotated with the missing-rationale note.
    let source = fixture_source("suppressed_graph.rs")
        .replace(
            "allow(lock-order): startup-only path, runs single-",
            "allow(lock-order)",
        )
        .replace("// threaded before the pool exists\n", "\n");
    let spec = LockOrderSpec::parse("order = [\"graph.alpha\", \"graph.beta\"]");
    let findings = analyze_files(&[("crates/core/src/graph.rs".to_string(), source)], &spec)
        .report
        .findings;
    let open: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == Rule::LockOrder && !f.suppressed)
        .collect();
    assert_eq!(open.len(), 1, "{findings:?}");
    assert!(
        open[0].message.contains("no rationale"),
        "{}",
        open[0].message
    );
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = scan_workspace(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "walked {} files",
        report.files_scanned
    );
    let open: Vec<_> = report.unsuppressed().collect();
    assert!(open.is_empty(), "unsuppressed findings: {open:#?}");
}
