//! E3/F4 micro-benchmarks: checkpoint cost through the kernel and raw
//! store writes underneath it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eden_bench::types::{bench_cluster, PayloadType};
use eden_capability::{NameGenerator, NodeId};
use eden_store::disk::SyncPolicy;
use eden_store::{CheckpointStore, DiskStore, MemStore};
use eden_wire::Value;

fn bench_kernel_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_kernel");
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let cluster = bench_cluster(1);
        let cap = cluster
            .node(0)
            .create_object(PayloadType::NAME, &[])
            .expect("create");
        cluster
            .node(0)
            .invoke(cap, "fill", &[Value::U64(size as u64)])
            .expect("fill");
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &(), |b, ()| {
            b.iter(|| {
                cluster
                    .node(0)
                    .invoke(cap, "checkpoint", &[])
                    .expect("ckpt")
            })
        });
        cluster.shutdown();
    }
    group.finish();
}

fn bench_raw_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_store_put");
    let g = NameGenerator::new(NodeId(0));
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let payload = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));

        let mem = MemStore::with_retention(4);
        let name = g.next_name();
        group.bench_with_input(BenchmarkId::new("mem", size), &(), |b, ()| {
            b.iter(|| mem.put(name, &payload).expect("put"))
        });

        let dir = std::env::temp_dir().join(format!("eden-bench-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).ok();
        let disk =
            DiskStore::open(dir.join(format!("{size}.log")), SyncPolicy::Never).expect("disk");
        let name = g.next_name();
        group.bench_with_input(BenchmarkId::new("disk_nosync", size), &(), |b, ()| {
            b.iter(|| disk.put(name, &payload).expect("put"))
        });
        drop(disk);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_kernel_checkpoint, bench_raw_stores
}
criterion_main!(benches);
