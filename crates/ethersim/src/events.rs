//! The discrete-event engine: a time-ordered event queue.
//!
//! Events at equal times pop in insertion order (a monotone sequence
//! number breaks ties), which keeps runs bit-for-bit deterministic for a
//! given seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic, time-ordered event queue.
///
/// # Examples
///
/// ```
/// use eden_ethersim::events::EventQueue;
/// use eden_ethersim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(20), "later");
/// q.schedule(SimTime(10), "sooner");
/// assert_eq!(q.pop(), Some((SimTime(10), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime(20), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Tests whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 'a');
        q.schedule(SimTime(5), 'b');
        q.schedule(SimTime(5), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(9), ());
        q.schedule(SimTime(3), ());
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(9)));
    }

    proptest! {
        #[test]
        fn pops_are_time_sorted(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimTime(t), t);
            }
            let mut popped = Vec::new();
            while let Some((at, _)) = q.pop() {
                popped.push(at);
            }
            let mut sorted = popped.clone();
            sorted.sort();
            prop_assert_eq!(popped, sorted);
        }
    }
}
