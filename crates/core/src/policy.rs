//! Placement policies.
//!
//! §4.3: "some objects may have the ability to make location decisions
//! for other objects in the system; for example, there may be a policy
//! object responsible for the location of objects in a particular
//! subsystem." The kernel exposes the mechanism ([`Node::move_object`]
//! guarded by `Rights::MOVE`); this module supplies reusable *policies* —
//! strategies that pick nodes — used by EFS replica placement, the
//! cluster harness, and the mobility experiments. `eden-apps` wraps one
//! in an invocable policy *object*.
//!
//! [`Node::move_object`]: crate::Node::move_object

use std::sync::atomic::{AtomicUsize, Ordering};

use eden_capability::NodeId;

/// A strategy for choosing a node from a candidate set.
pub trait PlacementPolicy: Send + Sync {
    /// Picks one node from `candidates` (nonempty).
    fn place(&self, candidates: &[NodeId]) -> NodeId;

    /// Picks `k` distinct nodes (fewer if `candidates` is smaller).
    fn place_k(&self, candidates: &[NodeId], k: usize) -> Vec<NodeId> {
        let mut picked = Vec::new();
        let mut pool: Vec<NodeId> = candidates.to_vec();
        while picked.len() < k && !pool.is_empty() {
            let choice = self.place(&pool);
            pool.retain(|&n| n != choice);
            picked.push(choice);
        }
        picked
    }
}

/// Cycles through candidates in order — the default spreading policy.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: AtomicUsize,
}

impl RoundRobin {
    /// A fresh round-robin cursor.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl PlacementPolicy for RoundRobin {
    fn place(&self, candidates: &[NodeId]) -> NodeId {
        assert!(!candidates.is_empty(), "placement needs candidates");
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        candidates[i % candidates.len()]
    }
}

/// Always picks the same node — co-location (§4.3: "Objects may require
/// either co-location or distribution").
#[derive(Debug, Clone, Copy)]
pub struct Pin(pub NodeId);

impl PlacementPolicy for Pin {
    fn place(&self, candidates: &[NodeId]) -> NodeId {
        if candidates.contains(&self.0) {
            self.0
        } else {
            candidates[0]
        }
    }
}

/// Picks the candidate with the fewest placements so far (a simple
/// load-aware policy; load is what this policy itself has assigned).
#[derive(Debug, Default)]
pub struct LeastLoaded {
    counts: parking_lot::Mutex<std::collections::HashMap<NodeId, usize>>,
}

impl LeastLoaded {
    /// A fresh load tracker.
    pub fn new() -> Self {
        LeastLoaded::default()
    }

    /// Records externally observed load (e.g. object counts per node).
    pub fn record(&self, node: NodeId, load: usize) {
        self.counts.lock().insert(node, load);
    }
}

impl PlacementPolicy for LeastLoaded {
    fn place(&self, candidates: &[NodeId]) -> NodeId {
        assert!(!candidates.is_empty(), "placement needs candidates");
        let mut counts = self.counts.lock();
        let choice = *candidates
            .iter()
            .min_by_key(|n| counts.get(n).copied().unwrap_or(0))
            .expect("nonempty");
        *counts.entry(choice).or_insert(0) += 1;
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn round_robin_cycles() {
        let p = RoundRobin::new();
        let c = nodes(3);
        let picks: Vec<NodeId> = (0..6).map(|_| p.place(&c)).collect();
        assert_eq!(
            picks,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(0),
                NodeId(1),
                NodeId(2)
            ]
        );
    }

    #[test]
    fn place_k_returns_distinct_nodes() {
        let p = RoundRobin::new();
        let picks = p.place_k(&nodes(4), 3);
        assert_eq!(picks.len(), 3);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn place_k_caps_at_candidate_count() {
        let p = RoundRobin::new();
        assert_eq!(p.place_k(&nodes(2), 5).len(), 2);
    }

    #[test]
    fn pin_prefers_its_node() {
        let p = Pin(NodeId(2));
        assert_eq!(p.place(&nodes(4)), NodeId(2));
        // Falls back when the pinned node is unavailable.
        assert_eq!(p.place(&[NodeId(0), NodeId(1)]), NodeId(0));
    }

    #[test]
    fn least_loaded_balances() {
        let p = LeastLoaded::new();
        let c = nodes(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10 {
            *counts.entry(p.place(&c)).or_insert(0) += 1;
        }
        assert_eq!(counts[&NodeId(0)], 5);
        assert_eq!(counts[&NodeId(1)], 5);
    }

    #[test]
    fn least_loaded_respects_recorded_load() {
        let p = LeastLoaded::new();
        p.record(NodeId(0), 100);
        p.record(NodeId(1), 0);
        assert_eq!(p.place(&nodes(2)), NodeId(1));
    }
}
