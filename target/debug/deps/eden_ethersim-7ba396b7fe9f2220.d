/root/repo/target/debug/deps/eden_ethersim-7ba396b7fe9f2220.d: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libeden_ethersim-7ba396b7fe9f2220.rmeta: crates/ethersim/src/lib.rs crates/ethersim/src/aloha.rs crates/ethersim/src/analytic.rs crates/ethersim/src/config.rs crates/ethersim/src/events.rs crates/ethersim/src/metrics.rs crates/ethersim/src/sim.rs crates/ethersim/src/time.rs crates/ethersim/src/workload.rs Cargo.toml

crates/ethersim/src/lib.rs:
crates/ethersim/src/aloha.rs:
crates/ethersim/src/analytic.rs:
crates/ethersim/src/config.rs:
crates/ethersim/src/events.rs:
crates/ethersim/src/metrics.rs:
crates/ethersim/src/sim.rs:
crates/ethersim/src/time.rs:
crates/ethersim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
