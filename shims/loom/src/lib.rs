//! In-tree shim for the `loom` crate (offline build environment).
//!
//! Real loom model-checks a closure by running it under a virtual
//! scheduler and exhaustively (DPOR-pruned) enumerating interleavings
//! of its `loom::sync` operations. This build environment has no
//! registry access, so this shim keeps loom's API *shape* — [`model`],
//! [`thread`], [`sync`] — while exploring interleavings statistically
//! instead of exhaustively: the model body runs many times on real OS
//! threads, each iteration under a distinct seed, and every touch of a
//! shim sync primitive calls [`step`], which uses the seeded per-thread
//! RNG to sometimes yield or briefly sleep. That perturbs the OS
//! scheduler into orderings a plain stress loop rarely reaches.
//!
//! The trade-off is honest: this shim can only *find* races and
//! deadlocks, never prove their absence. Swapping in the real crate is
//! a `Cargo.toml` one-liner when a registry is available — the test
//! code does not change.
//!
//! Iteration count defaults to 64 and can be raised with the
//! `LOOM_ITERS` environment variable (the real crate's
//! `LOOM_MAX_BRANCHES` knob has no analogue here).

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Seed for the current model iteration; thread RNGs derive from it.
static ITERATION_SEED: AtomicU64 = AtomicU64::new(0x9e3779b97f4a7c15);
/// Per-process spawn counter, mixed into each thread's RNG stream.
static SPAWN_COUNTER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static RNG: Cell<u64> = const { Cell::new(0) };
}

fn seed_this_thread() {
    let iter = ITERATION_SEED.load(Ordering::Relaxed);
    let salt = SPAWN_COUNTER.fetch_add(1, Ordering::Relaxed);
    RNG.with(|r| r.set(splitmix(iter ^ splitmix(salt + 1))));
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn next_rand() -> u64 {
    RNG.with(|r| {
        let mut x = r.get();
        if x == 0 {
            x = splitmix(ITERATION_SEED.load(Ordering::Relaxed));
        }
        // xorshift64*
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        r.set(x);
        x.wrapping_mul(0x2545f4914f6cdd1d)
    })
}

/// A scheduling perturbation point. Called by every shim sync-primitive
/// touch; model bodies may also call it directly between lock-free
/// operations (e.g. around `Histogram::record`) to widen the explored
/// orderings.
pub fn step() {
    match next_rand() % 16 {
        0..=2 => std::thread::yield_now(),
        3 => std::thread::sleep(std::time::Duration::from_micros(next_rand() % 50)),
        _ => {}
    }
}

/// Runs `f` under many seeded schedules. Panics (test failure)
/// propagate from any iteration.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for i in 0..iters {
        ITERATION_SEED.store(splitmix(0xEDE0 + i), Ordering::Relaxed);
        seed_this_thread();
        f();
    }
}

/// Loom-shaped thread handling: real OS threads whose closures are
/// wrapped to join the current iteration's RNG stream.
pub mod thread {
    pub use std::thread::{current, sleep, yield_now, JoinHandle};

    /// Spawns a thread seeded into the model's RNG stream.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::seed_this_thread();
            super::step();
            f()
        })
    }

    /// Mirror of `std::thread::Builder` (name + spawn only).
    pub struct Builder {
        inner: std::thread::Builder,
    }

    impl Default for Builder {
        fn default() -> Builder {
            Builder::new()
        }
    }

    impl Builder {
        /// A new builder with no name set.
        pub fn new() -> Builder {
            Builder {
                inner: std::thread::Builder::new(),
            }
        }

        /// Names the thread.
        pub fn name(self, name: String) -> Builder {
            Builder {
                inner: self.inner.name(name),
            }
        }

        /// Spawns the thread, seeded into the model's RNG stream.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            self.inner.spawn(move || {
                super::seed_this_thread();
                super::step();
                f()
            })
        }
    }
}

/// Loom-shaped sync primitives: parking_lot-flavoured API (guards, not
/// `Result`s) with a [`step`](super::step) on every touch.
pub mod sync {
    pub use std::sync::Arc;

    /// A mutex that perturbs scheduling on every acquisition.
    pub struct Mutex<T: ?Sized> {
        inner: parking_lot::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates the mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: parking_lot::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning its value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock (parking_lot-style: returns the guard).
        pub fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
            super::step();
            let guard = self.inner.lock();
            super::step();
            guard
        }

        /// Tries to acquire the lock without blocking.
        pub fn try_lock(&self) -> Option<parking_lot::MutexGuard<'_, T>> {
            super::step();
            self.inner.try_lock()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    /// A condition variable that perturbs scheduling around waits.
    #[derive(Default)]
    pub struct Condvar {
        inner: parking_lot::Condvar,
    }

    impl Condvar {
        /// Creates the condvar.
        pub fn new() -> Condvar {
            Condvar {
                inner: parking_lot::Condvar::new(),
            }
        }

        /// Blocks until notified.
        pub fn wait<T>(&self, guard: &mut parking_lot::MutexGuard<'_, T>) {
            self.inner.wait(guard);
            super::step();
        }

        /// Blocks until notified or the timeout elapses.
        pub fn wait_for<T>(
            &self,
            guard: &mut parking_lot::MutexGuard<'_, T>,
            timeout: std::time::Duration,
        ) -> parking_lot::WaitTimeoutResult {
            let result = self.inner.wait_for(guard, timeout);
            super::step();
            result
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            super::step();
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            super::step();
            self.inner.notify_all();
        }
    }

    /// Atomics that perturb scheduling on every operation.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! shim_atomic {
            ($name:ident, $std:ty, $value:ty) => {
                /// Atomic wrapper injecting a scheduling step per op.
                #[derive(Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// Creates the atomic.
                    pub const fn new(v: $value) -> $name {
                        $name {
                            inner: <$std>::new(v),
                        }
                    }

                    /// Atomic load.
                    pub fn load(&self, order: Ordering) -> $value {
                        super::super::step();
                        self.inner.load(order)
                    }

                    /// Atomic store.
                    pub fn store(&self, v: $value, order: Ordering) {
                        super::super::step();
                        self.inner.store(v, order);
                    }

                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, v: $value, order: Ordering) -> $value {
                        super::super::step();
                        self.inner.fetch_add(v, order)
                    }

                    /// Atomic swap, returning the previous value.
                    pub fn swap(&self, v: $value, order: Ordering) -> $value {
                        super::super::step();
                        self.inner.swap(v, order)
                    }

                    /// Compare-and-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $value,
                        new: $value,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$value, $value> {
                        super::super::step();
                        self.inner.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Atomic bool wrapper injecting a scheduling step per op.
        #[derive(Default)]
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates the atomic.
            pub const fn new(v: bool) -> AtomicBool {
                AtomicBool {
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> bool {
                super::super::step();
                self.inner.load(order)
            }

            /// Atomic store.
            pub fn store(&self, v: bool, order: Ordering) {
                super::super::step();
                self.inner.store(v, order);
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                super::super::step();
                self.inner.swap(v, order)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Condvar, Mutex};

    #[test]
    fn model_runs_many_seeded_iterations() {
        let runs = Arc::new(AtomicU64::new(0));
        let r = runs.clone();
        super::model(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert!(runs.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn threads_and_mutexes_compose() {
        super::model(|| {
            let total = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let total = total.clone();
                    super::thread::spawn(move || {
                        for _ in 0..10 {
                            *total.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*total.lock(), 30);
        });
    }

    #[test]
    fn condvar_wakes_waiters() {
        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p = pair.clone();
            let t = super::thread::spawn(move || {
                let mut ready = p.0.lock();
                while !*ready {
                    p.1.wait(&mut ready);
                }
            });
            *pair.0.lock() = true;
            pair.1.notify_all();
            t.join().unwrap();
        });
    }
}
