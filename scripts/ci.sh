#!/usr/bin/env bash
# CI entry point.
#
#   ./scripts/ci.sh            tier-1 gate: fmt, clippy, release build,
#                              workspace tests, bench compile, eden-lint,
#                              cargo-deny (if installed), telemetry smoke
#   ./scripts/ci.sh lint       eden-lint only (human output + JSON artifact)
#   ./scripts/ci.sh loom       concurrency models under --cfg loom
#   ./scripts/ci.sh tsan       workspace tests under ThreadSanitizer
#                              (needs nightly + rust-src; skips otherwise)
#   ./scripts/ci.sh miri       workspace tests under Miri
#                              (needs nightly miri component; skips otherwise)
set -euo pipefail
cd "$(dirname "$0")/.."

run_lint() {
  mkdir -p target/artifacts
  # Archive the machine-readable report and the lock-acquisition graph,
  # then fail loudly with the human-readable rerun if any unsuppressed
  # finding exists.
  if cargo run -q -p eden-lint -- --json --dot target/artifacts/lock-order.dot \
      > target/artifacts/lint.json; then
    echo "eden-lint: clean (report: target/artifacts/lint.json)"
  else
    echo "eden-lint: unsuppressed findings (report: target/artifacts/lint.json)" >&2
    cargo run -q -p eden-lint || true
    exit 1
  fi
  # The DOT header carries the linter's own cycle verdict over the
  # non-exempt edges; a cyclic lock graph gates even if every individual
  # edge finding was suppressed.
  if ! grep -q '^// acyclic-modulo-allowed: true$' target/artifacts/lock-order.dot; then
    echo "eden-lint: lock-order graph has a cycle outside the allowed edges" >&2
    echo "  (see target/artifacts/lock-order.dot)" >&2
    exit 1
  fi
  echo "eden-lint: lock graph acyclic (target/artifacts/lock-order.dot)"
}

run_loom() {
  # The kernel's sync shims swap to the loom primitives under this cfg
  # (see eden_kernel::sync::shim). A separate target dir keeps the
  # --cfg from thrashing the default build's fingerprints.
  export RUSTFLAGS="--cfg loom ${RUSTFLAGS:-}"
  export CARGO_TARGET_DIR=target/loom
  cargo test -p eden-kernel --test loom_vproc
  cargo test -p eden-obs --test loom_hist
}

run_tsan() {
  if ! rustup toolchain list 2>/dev/null | grep -q '^nightly' \
    || ! rustup component list --toolchain nightly --installed 2>/dev/null | grep -q '^rust-src'; then
    echo "tsan: skipped (needs a nightly toolchain with rust-src for -Zbuild-std)"
    return 0
  fi
  local triple
  triple=$(rustc -vV | sed -n 's/^host: //p')
  RUSTFLAGS="-Zsanitizer=thread ${RUSTFLAGS:-}" CARGO_TARGET_DIR=target/tsan \
    cargo +nightly test -Zbuild-std --target "$triple" --workspace
}

run_miri() {
  if ! rustup component list --toolchain nightly --installed 2>/dev/null | grep -q '^miri'; then
    echo "miri: skipped (needs the nightly miri component)"
    return 0
  fi
  # Threaded integration tests are far beyond Miri's time budget; the
  # per-crate unit suites cover the pointer- and ordering-sensitive code.
  CARGO_TARGET_DIR=target/miri cargo +nightly miri test --workspace --lib
}

case "${1:-all}" in
  lint) run_lint ;;
  loom) run_loom ;;
  tsan) run_tsan ;;
  miri) run_miri ;;
  all)
    cargo fmt --check
    cargo clippy --all-targets -- -D warnings
    cargo build --release
    cargo test --workspace -q
    cargo bench --no-run
    run_lint
    if command -v cargo-deny >/dev/null 2>&1; then
      cargo deny check
    else
      echo "cargo-deny: not installed, skipping (policy: deny.toml)"
    fi

    # Telemetry export smoke test: capture a cross-node trace through the
    # monitor object, check the exported Chrome-trace JSON parses and
    # carries stage-tagged spans, and archive the critical-path table.
    mkdir -p target/artifacts
    cargo run --release --example span_tree_capture -- \
      --chrome target/span_tree.trace.json --critpath target/artifacts/critpath.txt
    test -s target/span_tree.trace.json
    if command -v python3 >/dev/null 2>&1; then
      python3 -m json.tool target/span_tree.trace.json >/dev/null
    fi
    # Critical-path attribution needs every span stage-tagged: the
    # Chrome trace must label at least the execute stage, and the
    # archived table must bucket the invocation by stage.
    grep -q '"stage":"execute"' target/span_tree.trace.json
    test -s target/artifacts/critpath.txt
    grep -q 'accounted by named stages' target/artifacts/critpath.txt
    echo "critpath table archived: target/artifacts/critpath.txt"
    ;;
  *)
    echo "usage: $0 [all|lint|loom|tsan|miri]" >&2
    exit 2
    ;;
esac
