/root/repo/target/debug/deps/figure1_topology-07873d86c72cd7ed.d: tests/figure1_topology.rs

/root/repo/target/debug/deps/figure1_topology-07873d86c72cd7ed: tests/figure1_topology.rs

tests/figure1_topology.rs:
