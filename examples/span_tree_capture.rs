//! Prints the span tree of one cross-node invocation (README capture).

use eden::apps::counter::CounterType;
use eden::kernel::Cluster;
use eden::obs::{render_trace, SpanRecord};
use eden::wire::Value;

fn main() {
    let c = Cluster::builder()
        .nodes(2)
        .register(|| Box::new(CounterType))
        .build();
    let cap = c.node(0).create_object("counter", &[]).unwrap();
    c.node(1).invoke(cap, "add", &[Value::I64(5)]).unwrap();

    let root = c
        .node(1)
        .obs()
        .traces()
        .spans()
        .into_iter()
        .find(|s| s.name == "invoke" && s.parent_span == 0)
        .expect("root span");
    let spans: Vec<SpanRecord> = c
        .nodes()
        .iter()
        .flat_map(|n| n.obs().traces().spans())
        .filter(|s| s.trace_id == root.trace_id)
        .collect();
    print!("{}", render_trace(&spans, root.trace_id));
    c.shutdown();
}
