/root/repo/target/debug/examples/distributed_mail-f44b8d5f8dfd8899.d: examples/distributed_mail.rs

/root/repo/target/debug/examples/distributed_mail-f44b8d5f8dfd8899: examples/distributed_mail.rs

examples/distributed_mail.rs:
